// Package chainrepl implements a Chain-style protocol in the spirit of
// Aliph/Chain [31]: the chain communication topology of dimension E2.
// Replicas form a pipeline; the head orders client requests and each
// replica forwards down the chain, so every replica sends and receives
// exactly one message per slot — the minimal per-node load of any
// topology, bought with n sequential hops of latency and the optimistic
// assumptions that replicas and clients are honest (a2, a5).
//
// The tail closes a slot: it broadcasts a signed commit notice (and the
// client's reply), which all replicas adopt. When the chain stalls (a
// crashed member), the client's timeout triggers a PANIC broadcast; the
// replicas then reconfigure: view v excludes replica (v−1) mod n from the
// chain, so repeated panics rotate the exclusion until the dead member is
// out — the Abstract framework's "switch to the next instance",
// compressed. Byzantine members are outside this fallback's scope (Chain
// switches to a full BFT protocol for that; our deployments pair it with
// PBFT in the examples), which is exactly the optimism/fragility
// trade-off the paper assigns to chain topologies.
package chainrepl

import (
	"bftkit/internal/core"
	"bftkit/internal/crypto"
	"bftkit/internal/types"
)

// Timer names.
const (
	timerProgress = "progress"
)

// ChainMsg carries a slot down the chain, accumulating MAC evidence.
type ChainMsg struct {
	View   types.View
	Seq    types.SeqNum
	Digest types.Digest
	Batch  *types.Batch
	// Hops records the replicas the message passed through, in order,
	// each vouching with a MAC/signature over the slot digest.
	Hops []Hop
}

// Hop is one replica's endorsement of a slot.
type Hop struct {
	Replica types.NodeID
	Sig     []byte
}

// Kind implements types.Message.
func (*ChainMsg) Kind() string { return "CHAIN" }

// Slot implements obsv.Slotted.
func (m *ChainMsg) Slot() (types.View, types.SeqNum) { return m.View, m.Seq }

func slotDigest(v types.View, seq types.SeqNum, d types.Digest) types.Digest {
	var h types.Hasher
	h.Str("chain-slot").U64(uint64(v)).U64(uint64(seq)).Digest(d)
	return h.Sum()
}

// SigClaims implements crypto.SigClaimer: one claim per hop, each a named
// replica's endorsement of the slot digest — receivers verify every hop
// against hop.Replica, not the sender.
func (m *ChainMsg) SigClaims(types.NodeID) []crypto.SigClaim {
	sd := slotDigest(m.View, m.Seq, m.Digest)
	claims := make([]crypto.SigClaim, 0, len(m.Hops))
	for _, hop := range m.Hops {
		claims = append(claims, crypto.SigClaim{Signer: hop.Replica, Digest: sd, Sig: hop.Sig})
	}
	return claims
}

// CommitNoticeMsg is the tail's signed commit announcement.
type CommitNoticeMsg struct {
	View   types.View
	Seq    types.SeqNum
	Digest types.Digest
	Batch  *types.Batch
	Tail   types.NodeID
	Sig    []byte
}

// Kind implements types.Message.
func (*CommitNoticeMsg) Kind() string { return "CHAIN-COMMIT" }

// Slot implements obsv.Slotted.
func (m *CommitNoticeMsg) Slot() (types.View, types.SeqNum) { return m.View, m.Seq }

// SigDigest is the signed content.
func (m *CommitNoticeMsg) SigDigest() types.Digest {
	var h types.Hasher
	h.Str("chain-commit").U64(uint64(m.View)).U64(uint64(m.Seq)).Digest(m.Digest)
	return h.Sum()
}

// SigClaims implements crypto.SigClaimer: the named tail's signature —
// receivers verify against m.Tail, not the sender.
func (m *CommitNoticeMsg) SigClaims(types.NodeID) []crypto.SigClaim {
	return []crypto.SigClaim{{Signer: m.Tail, Digest: m.SigDigest(), Sig: m.Sig}}
}

// PanicMsg is the client's alarm that the chain stalled.
type PanicMsg struct {
	Client types.NodeID
	Sig    []byte
}

// Kind implements types.Message.
func (*PanicMsg) Kind() string { return "CHAIN-PANIC" }

// ReconfigMsg installs the next chain configuration; replicas adopt it
// when f+1 distinct members demand the same view.
type ReconfigMsg struct {
	NewView types.View
	// LastExec lets the next head resume sequence numbering above the
	// highest execution point any member reached, so reconfigurations
	// never leave gaps in the slot space.
	LastExec types.SeqNum
	Replica  types.NodeID
	Sig      []byte
}

// Kind implements types.Message.
func (*ReconfigMsg) Kind() string { return "CHAIN-RECONFIG" }

// FetchChainMsg asks a peer for committed slots above From (gap repair
// after a reconfiguration).
type FetchChainMsg struct {
	From types.SeqNum
}

// Kind implements types.Message.
func (*FetchChainMsg) Kind() string { return "CHAIN-FETCH" }

// ChainEntriesMsg answers a FetchChainMsg. Under the chain's honest-
// replica assumption (a2) entries are adopted from a single responder.
type ChainEntriesMsg struct {
	Entries []ChainEntry
}

// ChainEntry is one committed slot.
type ChainEntry struct {
	View  types.View
	Seq   types.SeqNum
	Batch *types.Batch
}

// Kind implements types.Message.
func (*ChainEntriesMsg) Kind() string { return "CHAIN-ENTRIES" }

// SigDigest is the signed content.
func (m *ReconfigMsg) SigDigest() types.Digest {
	var h types.Hasher
	h.Str("chain-reconfig").U64(uint64(m.NewView)).U64(uint64(m.LastExec)).U64(uint64(m.Replica))
	return h.Sum()
}

// Chain is the protocol state machine for one replica.
type Chain struct {
	env core.Env

	view    types.View
	nextSeq types.SeqNum

	pending       []*types.Request
	pendingSet    map[types.RequestKey]bool
	inFlight      map[types.RequestKey]bool
	watch         map[types.RequestKey]bool
	done          map[types.RequestKey]bool
	replies       map[types.RequestKey]*types.Reply
	progressArmed bool

	reconfigVotes map[types.View]map[types.NodeID]bool
	reconfigExec  map[types.View]types.SeqNum
}

// New returns a Chain replica.
func New(cfg core.Config) core.Protocol { return &Chain{} }

func init() {
	core.Register(core.Registration{
		Name:       "chain",
		Profile:    core.ChainProfile(),
		NewReplica: New,
		NewClient: func(cfg core.Config) core.ClientProtocol {
			return NewClient()
		},
	})
}

// Init implements core.Protocol.
func (c *Chain) Init(env core.Env) {
	c.env = env
	c.pendingSet = make(map[types.RequestKey]bool)
	c.inFlight = make(map[types.RequestKey]bool)
	c.watch = make(map[types.RequestKey]bool)
	c.done = make(map[types.RequestKey]bool)
	c.replies = make(map[types.RequestKey]*types.Reply)
	c.reconfigVotes = make(map[types.View]map[types.NodeID]bool)
	c.reconfigExec = make(map[types.View]types.SeqNum)
}

// View returns the current chain configuration number.
func (c *Chain) View() types.View { return c.view }

// ChainFor returns the pipeline order of view v: all replicas in ring
// order starting after the excluded one. View 0 excludes nobody; view
// v > 0 excludes replica (v−1) mod n.
func (c *Chain) ChainFor(v types.View) []types.NodeID {
	n := c.env.N()
	var out []types.NodeID
	if v == 0 {
		for i := 0; i < n; i++ {
			out = append(out, types.NodeID(i))
		}
		return out
	}
	excluded := types.NodeID(uint64(v-1) % uint64(n))
	for i := 0; i < n; i++ {
		id := types.NodeID((uint64(excluded) + 1 + uint64(i)) % uint64(n))
		if id != excluded {
			out = append(out, id)
		}
	}
	return out
}

// Head returns the current chain head.
func (c *Chain) Head() types.NodeID { return c.ChainFor(c.view)[0] }

// Tail returns the current chain tail.
func (c *Chain) Tail() types.NodeID {
	chain := c.ChainFor(c.view)
	return chain[len(chain)-1]
}

// successor returns the next replica after id in the current chain, or
// -1 if id is the tail or not in the chain.
func (c *Chain) successor(id types.NodeID) types.NodeID {
	chain := c.ChainFor(c.view)
	for i, x := range chain {
		if x == id {
			if i+1 < len(chain) {
				return chain[i+1]
			}
			return -1
		}
	}
	return -1
}

// OnRequest implements core.Protocol: the head orders; everyone else
// forwards to the head.
func (c *Chain) OnRequest(req *types.Request) {
	if c.done[req.Key()] {
		// Retransmission of an executed request: replicas that were not
		// in the reply suffix when it executed have nothing in the
		// runtime's reply cache, so answer from the protocol's own.
		// This matters after a reconfiguration moved the suffix — the
		// new suffix must be able to satisfy the client's f+1 quorum.
		if rep := c.replies[req.Key()]; rep != nil && c.inReplySuffix() {
			c.env.Reply(rep)
		}
		return
	}
	if !c.env.Verifier().VerifySig(req.Client, req.Digest(), req.Sig) {
		return
	}
	key := req.Key()
	c.watch[key] = true
	if c.pendingSet[key] {
		if c.Head() != c.env.ID() {
			c.env.Send(c.Head(), &core.ForwardMsg{Req: req})
		}
		return
	}
	c.pendingSet[key] = true
	c.pending = append(c.pending, req)
	if c.Head() != c.env.ID() {
		c.env.Send(c.Head(), &core.ForwardMsg{Req: req})
		return
	}
	c.maybePropose()
}

func (c *Chain) maybePropose() {
	if c.Head() != c.env.ID() {
		return
	}
	for {
		reqs := c.takePending(c.env.Config().BatchSize)
		if len(reqs) == 0 {
			return
		}
		batch := types.NewBatch(reqs...)
		c.nextSeq++
		m := &ChainMsg{View: c.view, Seq: c.nextSeq, Digest: batch.Digest(), Batch: batch}
		c.processChainMsg(m)
	}
}

func (c *Chain) takePending(max int) []*types.Request {
	var out []*types.Request
	live := c.pending[:0]
	for _, req := range c.pending {
		key := req.Key()
		if !c.pendingSet[key] || c.done[req.Key()] {
			continue
		}
		live = append(live, req)
		if len(out) < max && !c.inFlight[key] {
			c.inFlight[key] = true
			out = append(out, req)
		}
	}
	c.pending = live
	return out
}

// processChainMsg appends this replica's endorsement and forwards (or
// closes the slot at the tail).
func (c *Chain) processChainMsg(m *ChainMsg) {
	if m.View != c.view {
		return
	}
	if m.Batch.Digest() != m.Digest {
		return
	}
	// A slot this replica already committed must not be endorsed again.
	// After a reconfiguration whose f+1 quorum missed the one member that
	// saw the old tail's commit notice, the new head re-numbers from a
	// stale execution point and re-proposes an already-taken sequence;
	// endorsing it would fork the chain. Push the committed entries back
	// instead so the laggards repair and the next reconfiguration rebases
	// above them.
	if ent := c.env.Ledger().Get(m.Seq); ent != nil {
		if ent.Batch.Digest() != m.Digest {
			c.shareCommitted(ent.Seq - 1)
		}
		return
	}
	sd := slotDigest(m.View, m.Seq, m.Digest)
	m.Hops = append(m.Hops, Hop{Replica: c.env.ID(), Sig: c.env.Signer().Sign(sd)})
	for _, r := range m.Batch.Requests {
		c.watch[r.Key()] = true
		c.inFlight[r.Key()] = true
	}
	next := c.successor(c.env.ID())
	if next >= 0 {
		c.env.Send(next, m)
		return
	}
	// Tail: the slot traversed every member — commit and announce.
	notice := &CommitNoticeMsg{View: m.View, Seq: m.Seq, Digest: m.Digest, Batch: m.Batch, Tail: c.env.ID()}
	notice.Sig = c.env.Signer().Sign(notice.SigDigest())
	c.env.Broadcast(notice)
	c.adoptCommit(notice)
}

func (c *Chain) adoptCommit(m *CommitNoticeMsg) {
	if ent := c.env.Ledger().Get(m.Seq); ent != nil {
		if ent.Batch.Digest() != m.Digest {
			c.shareCommitted(m.Seq - 1)
		}
		return
	}
	proof := &types.CommitProof{View: m.View, Seq: m.Seq, Digest: m.Digest,
		Special: "chain-tail-notice", Voters: []types.NodeID{m.Tail}}
	c.env.Commit(m.View, m.Seq, m.Batch, proof)
}

// shareCommitted broadcasts this replica's committed entries above from:
// the repair path for peers whose reconfiguration rebased below a slot
// this replica knows to be committed.
func (c *Chain) shareCommitted(from types.SeqNum) {
	if lw := c.env.Ledger().LowWater(); from < lw {
		from = lw
	}
	entries := c.env.Ledger().CommittedAbove(from)
	if len(entries) == 0 {
		return
	}
	resp := &ChainEntriesMsg{}
	for _, e := range entries {
		resp.Entries = append(resp.Entries, ChainEntry{View: e.View, Seq: e.Seq, Batch: e.Batch})
	}
	c.env.Broadcast(resp)
}

// OnMessage implements core.Protocol.
func (c *Chain) OnMessage(from types.NodeID, m types.Message) {
	switch mm := m.(type) {
	case *core.ForwardMsg:
		c.OnRequest(mm.Req)
	case *ChainMsg:
		// Must arrive from our predecessor with valid hop endorsements.
		if c.successor(from) != c.env.ID() {
			return
		}
		sd := slotDigest(mm.View, mm.Seq, mm.Digest)
		for _, hop := range mm.Hops {
			if !c.env.Verifier().VerifySig(hop.Replica, sd, hop.Sig) {
				return
			}
		}
		c.processChainMsg(mm)
	case *CommitNoticeMsg:
		if mm.Tail != c.Tail() && from != mm.Tail {
			return
		}
		if !c.env.Verifier().VerifySig(mm.Tail, mm.SigDigest(), mm.Sig) {
			return
		}
		c.adoptCommit(mm)
	case *FetchChainMsg:
		led := c.env.Ledger()
		if led.LastExecuted() <= mm.From {
			return
		}
		resp := &ChainEntriesMsg{}
		for _, e := range led.CommittedAbove(mm.From) {
			resp.Entries = append(resp.Entries, ChainEntry{View: e.View, Seq: e.Seq, Batch: e.Batch})
		}
		if len(resp.Entries) > 0 {
			c.env.Send(from, resp)
		}
	case *ChainEntriesMsg:
		// Adopted under the chain's honest-member assumption (a2); a
		// Byzantine peer would force the switch to a full BFT protocol
		// anyway (the Abstract fallback, out of scope here). Entries
		// conflicting with slots already committed here are skipped — the
		// cross-replica audit, not a ledger overwrite, is where such a
		// fork surfaces.
		for _, e := range mm.Entries {
			if ent := c.env.Ledger().Get(e.Seq); ent != nil {
				continue
			}
			proof := &types.CommitProof{View: e.View, Seq: e.Seq, Digest: e.Batch.Digest(),
				Special: "chain-catchup"}
			c.env.Commit(e.View, e.Seq, e.Batch, proof)
		}
	case *PanicMsg:
		// A stalled client: demand the next configuration.
		c.demandReconfig(c.view + 1)
	case *ReconfigMsg:
		if mm.Replica != from {
			return
		}
		if !c.env.Verifier().VerifySig(from, mm.SigDigest(), mm.Sig) {
			return
		}
		c.onReconfig(mm)
	}
}

func (c *Chain) demandReconfig(v types.View) {
	if v <= c.view {
		return
	}
	rm := &ReconfigMsg{NewView: v, LastExec: c.env.Ledger().LastExecuted(), Replica: c.env.ID()}
	rm.Sig = c.env.Signer().Sign(rm.SigDigest())
	c.env.Broadcast(rm)
	c.onReconfig(rm)
}

func (c *Chain) onReconfig(m *ReconfigMsg) {
	if m.NewView <= c.view {
		return
	}
	set := c.reconfigVotes[m.NewView]
	if set == nil {
		set = make(map[types.NodeID]bool)
		c.reconfigVotes[m.NewView] = set
	}
	set[m.Replica] = true
	if m.LastExec > c.reconfigExec[m.NewView] {
		c.reconfigExec[m.NewView] = m.LastExec
	}
	if len(set) < c.env.F()+1 {
		return
	}
	c.view = m.NewView
	c.inFlight = make(map[types.RequestKey]bool)
	// The new head numbers slots above the highest reported execution
	// point, and members behind it repair the gap by fetching.
	base := c.reconfigExec[m.NewView]
	if own := c.env.Ledger().LastExecuted(); own > base {
		base = own
	}
	c.nextSeq = base
	if c.env.Ledger().LastExecuted() < base {
		c.env.Broadcast(&FetchChainMsg{From: c.env.Ledger().LastExecuted()})
	}
	for v := range c.reconfigVotes {
		if v <= c.view {
			delete(c.reconfigVotes, v)
			delete(c.reconfigExec, v)
		}
	}
	c.env.ViewChanged(c.view)
	c.maybePropose()
}

// OnTimer implements core.Protocol (the chain replica has no timers; the
// client drives fault detection, P6's repairer role).
func (c *Chain) OnTimer(id core.TimerID) {}

// inReplySuffix reports whether this replica is one of the last f+1
// members of the current chain — the segment whose replies the client
// cross-checks (Aliph: each suffix member authenticates the result, so
// f+1 matching replies pin it to at least one honest replica).
func (c *Chain) inReplySuffix() bool {
	chain := c.ChainFor(c.view)
	suffix := c.env.Config().F + 1
	for i, id := range chain {
		if id == c.env.ID() {
			return i >= len(chain)-suffix
		}
	}
	return false
}

// OnExecuted implements core.Protocol: the last f+1 chain members each
// reply, and the client accepts a result only on f+1 signed matches. A
// single-tail reply would let one corrupt tail hand clients wrong
// results with no honest replica in the loop (P6).
func (c *Chain) OnExecuted(seq types.SeqNum, batch *types.Batch, results [][]byte) {
	for i, req := range batch.Requests {
		delete(c.watch, req.Key())
		delete(c.pendingSet, req.Key())
		delete(c.inFlight, req.Key())
		c.done[req.Key()] = true
		rep := &types.Reply{
			Client:    req.Client,
			ClientSeq: req.ClientSeq,
			View:      c.view,
			Seq:       seq,
			Result:    results[i],
		}
		// Cache on every replica, not just the current suffix: a later
		// reconfiguration may rotate this replica into the suffix and a
		// retransmitting client will need its vote.
		c.replies[req.Key()] = rep
		if c.inReplySuffix() {
			c.env.Reply(rep)
		}
	}
	if c.nextSeq < seq {
		c.nextSeq = seq
	}
	c.maybePropose()
}

// Client is the chain client: send to the head, accept a result once
// f+1 distinct chain members have signed it (the reply suffix), panic on
// timeout (repairer role).
type Client struct {
	env      core.ClientEnv
	view     types.View
	pending  map[uint64]*types.Request
	votes    map[uint64]map[string]map[types.NodeID]bool
	panicked map[uint64]int
}

// NewClient returns a chain client.
func NewClient() *Client {
	return &Client{
		pending:  make(map[uint64]*types.Request),
		votes:    make(map[uint64]map[string]map[types.NodeID]bool),
		panicked: make(map[uint64]int),
	}
}

// Init implements core.ClientProtocol.
func (c *Client) Init(env core.ClientEnv) { c.env = env }

func (c *Client) headFor(v types.View) types.NodeID {
	n := c.env.N()
	if v == 0 {
		return 0
	}
	excluded := uint64(v-1) % uint64(n)
	return types.NodeID((excluded + 1) % uint64(n))
}

// Submit implements core.ClientProtocol.
func (c *Client) Submit(req *types.Request) {
	c.pending[req.ClientSeq] = req
	c.env.Send(c.headFor(c.view), &core.RequestMsg{Req: req})
	c.env.SetTimer(core.TimerID{Name: "chain-wait", Seq: types.SeqNum(req.ClientSeq)},
		c.env.Config().RequestTimeout)
}

// OnMessage implements core.ClientProtocol.
func (c *Client) OnMessage(from types.NodeID, m types.Message) {
	rm, ok := m.(*core.ReplyMsg)
	if !ok {
		return
	}
	rep := rm.R
	req := c.pending[rep.ClientSeq]
	if req == nil {
		return
	}
	if !c.env.Verifier().VerifySig(rep.Replica, rep.Digest(), rep.Sig) {
		return
	}
	if rep.View > c.view {
		c.view = rep.View
	}
	// One corrupt suffix member (the tail included) must not be able to
	// pass off a wrong result, so count signed matching replies until
	// f+1 distinct replicas agree.
	byResult := c.votes[rep.ClientSeq]
	if byResult == nil {
		byResult = make(map[string]map[types.NodeID]bool)
		c.votes[rep.ClientSeq] = byResult
	}
	set := byResult[string(rep.Result)]
	if set == nil {
		set = make(map[types.NodeID]bool)
		byResult[string(rep.Result)] = set
	}
	set[rep.Replica] = true
	if len(set) < c.env.F()+1 {
		return
	}
	c.env.StopTimer(core.TimerID{Name: "chain-wait", Seq: types.SeqNum(rep.ClientSeq)})
	delete(c.pending, rep.ClientSeq)
	delete(c.votes, rep.ClientSeq)
	delete(c.panicked, rep.ClientSeq)
	c.env.Done(req, rep.Result)
}

// OnTimer implements core.ClientProtocol: the repairer path — panic to
// every replica, bump the presumed view, and retry at the next head.
func (c *Client) OnTimer(id core.TimerID) {
	req := c.pending[uint64(id.Seq)]
	if req == nil {
		return
	}
	c.panicked[uint64(id.Seq)]++
	c.env.BroadcastReplicas(&PanicMsg{Client: c.env.ID()})
	c.view++
	c.env.BroadcastReplicas(&core.RequestMsg{Req: req})
	c.env.SetTimer(id, c.env.Config().RequestTimeout)
}
