package chainrepl_test

import (
	"fmt"
	"testing"
	"time"

	"bftkit/internal/core"
	"bftkit/internal/harness"
	"bftkit/internal/kvstore"
	"bftkit/internal/protocols/chainrepl"
	_ "bftkit/internal/protocols/pbft"
	"bftkit/internal/types"
)

func op(client, k int) []byte {
	return kvstore.Put(fmt.Sprintf("c%d-k%d", client, k), []byte(fmt.Sprintf("v%d", k)))
}

func TestFaultFreeCommit(t *testing.T) {
	c := harness.NewCluster(harness.Options{Protocol: "chain", N: 4, Clients: 2})
	c.Start()
	c.ClosedLoop(20, op)
	c.RunUntilIdle(60 * time.Second)
	if got, want := c.Metrics.Completed, 40; got != want {
		t.Fatalf("completed %d, want %d", got, want)
	}
	if err := c.Audit(); err != nil {
		t.Fatal(err)
	}
	h0 := c.Apps[0].Hash()
	for i := 1; i < 4; i++ {
		if c.Apps[i].Hash() != h0 {
			t.Fatalf("replica %d state diverges", i)
		}
	}
}

func TestMinimalPerNodeLoad(t *testing.T) {
	// E2's chain claim: per-slot per-node load is O(1); total traffic
	// per request is far below PBFT's quadratic exchange.
	msgs := func(proto string) float64 {
		c := harness.NewCluster(harness.Options{Protocol: proto, N: 7, Clients: 1})
		c.Start()
		c.ClosedLoop(20, op)
		c.RunUntilIdle(60 * time.Second)
		if c.Metrics.Completed != 20 {
			t.Fatalf("%s completed %d", proto, c.Metrics.Completed)
		}
		d, _ := c.Net.Totals()
		return float64(d) / 20
	}
	chain := msgs("chain")
	pbft := msgs("pbft")
	if chain >= pbft/3 {
		t.Fatalf("chain traffic (%.0f/req) should be a small fraction of pbft's (%.0f/req)", chain, pbft)
	}
}

func TestLatencyIsNHops(t *testing.T) {
	// The chain's cost: latency grows with chain length (n sequential
	// hops), unlike PBFT's constant 3 phases.
	mean := func(n int) time.Duration {
		c := harness.NewCluster(harness.Options{Protocol: "chain", N: n, Clients: 1})
		c.Start()
		c.ClosedLoop(20, op)
		c.RunUntilIdle(60 * time.Second)
		if c.Metrics.Completed != 20 {
			t.Fatalf("n=%d completed %d", n, c.Metrics.Completed)
		}
		return c.Metrics.MeanLatency()
	}
	small := mean(4)
	big := mean(10)
	if big <= small+3*time.Millisecond {
		t.Fatalf("latency should grow with chain length: n=4 %v, n=10 %v", small, big)
	}
}

func TestCrashTriggersPanicAndReconfiguration(t *testing.T) {
	c := harness.NewCluster(harness.Options{
		Protocol: "chain", N: 4, Clients: 2,
		Tune: func(cfg *core.Config) { cfg.RequestTimeout = 60 * time.Millisecond },
	})
	c.Start()
	c.ClosedLoop(10, op)
	c.Run(15 * time.Millisecond)
	c.Crash(2) // a mid-chain replica
	c.RunUntilIdle(300 * time.Second)
	if got, want := c.Metrics.Completed, 20; got != want {
		t.Fatalf("completed %d after mid-chain crash, want %d", got, want)
	}
	// The surviving replicas must have reconfigured past r2.
	ch := c.Replicas[0].Protocol().(*chainrepl.Chain)
	if ch.View() == 0 {
		t.Fatal("no reconfiguration happened")
	}
	for _, id := range ch.ChainFor(ch.View()) {
		if id == 2 {
			t.Fatalf("crashed replica still in chain %v", ch.ChainFor(ch.View()))
		}
	}
	if err := c.Audit(2); err != nil {
		t.Fatal(err)
	}
	_ = types.NodeID(0)
}
