package prime_test

import (
	"fmt"
	"testing"
	"time"

	"bftkit/internal/core"
	"bftkit/internal/harness"
	"bftkit/internal/kvstore"
	"bftkit/internal/protocols/pbft"
	"bftkit/internal/protocols/prime"
	"bftkit/internal/types"
)

func op(client, k int) []byte {
	return kvstore.Put(fmt.Sprintf("c%d-k%d", client, k), []byte(fmt.Sprintf("v%d", k)))
}

func TestFaultFreeCommit(t *testing.T) {
	c := harness.NewCluster(harness.Options{Protocol: "prime", N: 4, Clients: 2})
	c.Start()
	c.ClosedLoop(20, op)
	c.RunUntilIdle(60 * time.Second)
	if got, want := c.Metrics.Completed, 40; got != want {
		t.Fatalf("completed %d, want %d", got, want)
	}
	kinds, _ := c.Net.KindCounts()
	if kinds["PO-REQUEST"] == 0 || kinds["PO-ACK"] == 0 {
		t.Fatal("preordering stage did not run")
	}
	if err := c.Audit(); err != nil {
		t.Fatal(err)
	}
}

func TestPreorderingCostsMessages(t *testing.T) {
	// Robustness is not free (DC12): Prime's preordering adds quadratic
	// traffic per request compared with plain PBFT.
	msgs := func(proto string) int64 {
		c := harness.NewCluster(harness.Options{Protocol: proto, N: 4, Clients: 1})
		c.Start()
		c.ClosedLoop(20, op)
		c.RunUntilIdle(60 * time.Second)
		if c.Metrics.Completed != 20 {
			t.Fatalf("%s completed %d", proto, c.Metrics.Completed)
		}
		d, _ := c.Net.Totals()
		return d
	}
	if p, b := msgs("prime"), msgs("pbft"); p <= b {
		t.Fatalf("prime (%d msgs) should cost more than pbft (%d msgs)", p, b)
	}
}

func TestDelayAttackBounded(t *testing.T) {
	// X14's core claim: a Byzantine leader adding delay just under
	// PBFT's view-change timeout tanks PBFT's latency with impunity;
	// Prime's monitor evicts it within the (much tighter) bound.
	attack := 150 * time.Millisecond // < PBFT's 250ms timeout
	run := func(proto string) (time.Duration, int) {
		c := harness.NewCluster(harness.Options{
			Protocol: proto, N: 4, Clients: 2,
			MakeReplica: func(id types.NodeID, cfg core.Config) core.Protocol {
				if id != 0 {
					return nil
				}
				if proto == "prime" {
					return prime.NewWithOptions(cfg, prime.Options{
						Inner: pbft.Options{DelayAttack: attack},
					})
				}
				return pbft.NewWithOptions(cfg, pbft.Options{DelayAttack: attack})
			},
		})
		c.Start()
		c.ClosedLoop(15, op)
		c.RunUntilIdle(300 * time.Second)
		if c.Metrics.Completed != 30 {
			t.Fatalf("%s completed %d under delay attack", proto, c.Metrics.Completed)
		}
		vcs := 0
		for id, vs := range c.Metrics.ViewChanges {
			if id != 0 {
				vcs += len(vs)
			}
		}
		return c.Metrics.LatencyPercentile(50), vcs
	}
	pbftLat, pbftVCs := run("pbft")
	primeLat, primeVCs := run("prime")
	if pbftVCs != 0 {
		t.Fatalf("pbft should tolerate the sub-timeout delay attack without view changes, saw %d", pbftVCs)
	}
	if primeVCs == 0 {
		t.Fatal("prime's monitor should have evicted the delaying leader")
	}
	if primeLat >= pbftLat/2 {
		t.Fatalf("prime median latency %v should be far below pbft's %v under attack", primeLat, pbftLat)
	}
}

func TestLeaderCrash(t *testing.T) {
	c := harness.NewCluster(harness.Options{Protocol: "prime", N: 4, Clients: 2})
	c.Start()
	c.ClosedLoop(15, op)
	c.Run(15 * time.Millisecond)
	c.Crash(0)
	c.RunUntilIdle(120 * time.Second)
	if got, want := c.Metrics.Completed, 30; got != want {
		t.Fatalf("completed %d after leader crash, want %d", got, want)
	}
	if err := c.Audit(0); err != nil {
		t.Fatal(err)
	}
}

func TestPreorderImprovesFairness(t *testing.T) {
	// X8's shape: a front-running PBFT leader freely reorders requests
	// it buffers; Prime's preorder coordinates pin the feed order.
	violations := func(proto string) float64 {
		c := harness.NewCluster(harness.Options{
			Protocol: proto, N: 4, Clients: 6, Seed: 7,
			Tune: func(cfg *core.Config) { cfg.BatchSize = 1 },
			MakeReplica: func(id types.NodeID, cfg core.Config) core.Protocol {
				if id == 0 && proto == "pbft" {
					return pbft.NewWithOptions(cfg, pbft.Options{FrontRun: true})
				}
				return nil
			},
		})
		c.Start()
		c.OpenLoop(10, 3*time.Millisecond, op)
		c.RunUntilIdle(300 * time.Second)
		if c.Metrics.Completed < 55 {
			t.Fatalf("%s completed only %d", proto, c.Metrics.Completed)
		}
		v, pairs := c.Metrics.FairnessViolations(2 * time.Millisecond)
		if pairs == 0 {
			t.Fatalf("%s: no measurable pairs", proto)
		}
		return float64(v) / float64(pairs)
	}
	unfair := violations("pbft")
	fair := violations("prime")
	if fair >= unfair {
		t.Fatalf("prime violation rate %.3f should beat front-running pbft %.3f", fair, unfair)
	}
}
