package prime_test

import (
	"fmt"
	"testing"
	"time"

	"bftkit/internal/core"
	"bftkit/internal/harness"
	"bftkit/internal/protocols/pbft"
	"bftkit/internal/protocols/prime"
	"bftkit/internal/types"
)

func TestDebugDelayFull(t *testing.T) {
	attack := 150 * time.Millisecond
	c := harness.NewCluster(harness.Options{
		Protocol: "prime", N: 4, Clients: 2,
		MakeReplica: func(id types.NodeID, cfg core.Config) core.Protocol {
			if id != 0 {
				return nil
			}
			return prime.NewWithOptions(cfg, prime.Options{Inner: pbft.Options{DelayAttack: attack}})
		},
	})
	c.Start()
	c.ClosedLoop(15, op)
	for i := 0; i < 12; i++ {
		c.Run(100 * time.Millisecond)
		d, drop := c.Net.Totals()
		fmt.Printf("t=%v completed=%d delivered=%d dropped=%d pend=%d\n", c.Sched.Now(), c.Metrics.Completed, d, drop, c.Sched.Pending())
		if c.Sched.Pending() == 0 {
			break
		}
	}
	kinds, _ := c.Net.KindCounts()
	fmt.Printf("kinds=%v\n", kinds)
	for i := 0; i < 4; i++ {
		pr := c.Replicas[i].Protocol().(*prime.Prime)
		inner := pr.Inner().(*pbft.PBFT)
		fmt.Printf("r%d inner: %s lastExec=%d\n", i, inner.DebugState(), c.Replicas[i].Ledger().LastExecuted())
	}
}
