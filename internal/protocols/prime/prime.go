// Package prime implements a Prime-style robust protocol [16], design
// choice 12: a preordering stage runs in front of PBFT-style ordering.
// Each request is stamped by a deterministic *origin* replica with a
// local sequence number and broadcast (po-request); all replicas
// acknowledge all-to-all (po-ack); a request with 2f+1 acknowledgements
// is *eligible* and enters the ordering stage in the deterministic
// (localSeq, origin) interleaving. Two consequences the paper highlights:
//
//   - robustness: every replica knows when a request became eligible, so
//     the leader is monitored against a tight bound (τ7-style performance
//     check, here realized as a tightened progress timeout on the inner
//     PBFT engine). A leader that delays ordering — the attack that
//     degrades plain PBFT's throughput by orders of magnitude while
//     staying under its coarse view-change timeout — is replaced within
//     the monitor bound instead (experiment X14);
//   - partial order-fairness: requests enter ordering in preorder
//     coordinates rather than at the leader's whim (experiment X8).
//
// The ordering stage reuses the PBFT engine (internal/protocols/pbft)
// behind an environment wrapper that tightens its view-change timeout to
// the monitor bound.
package prime

import (
	"container/heap"
	"time"

	"bftkit/internal/core"
	"bftkit/internal/crypto"
	"bftkit/internal/protocols/pbft"
	"bftkit/internal/types"
)

// PORequestMsg is the origin's preorder stamp for a request.
type PORequestMsg struct {
	Origin   types.NodeID
	LocalSeq uint64
	Req      *types.Request
	Sig      []byte
}

// Kind implements types.Message.
func (*PORequestMsg) Kind() string { return "PO-REQUEST" }

// SigDigest is the signed content.
func (m *PORequestMsg) SigDigest() types.Digest {
	var h types.Hasher
	h.Str("prime-poreq").U64(uint64(m.Origin)).U64(m.LocalSeq).Digest(m.Req.Digest())
	return h.Sum()
}

// SigClaims implements crypto.SigClaimer: the origin's preorder stamp,
// which receivers verify against the sender.
func (m *PORequestMsg) SigClaims(from types.NodeID) []crypto.SigClaim {
	return []crypto.SigClaim{{Signer: from, Digest: m.SigDigest(), Sig: m.Sig}}
}

// POAckMsg acknowledges receipt of a preordered request (all-to-all).
type POAckMsg struct {
	Origin   types.NodeID
	LocalSeq uint64
	Digest   types.Digest
	Replica  types.NodeID
	Sig      []byte
}

// Kind implements types.Message.
func (*POAckMsg) Kind() string { return "PO-ACK" }

// SigDigest is the signed content.
func (m *POAckMsg) SigDigest() types.Digest {
	var h types.Hasher
	h.Str("prime-poack").U64(uint64(m.Origin)).U64(m.LocalSeq).Digest(m.Digest).U64(uint64(m.Replica))
	return h.Sum()
}

// SigClaims implements crypto.SigClaimer: the acker's signature, which
// receivers verify against the sender.
func (m *POAckMsg) SigClaims(from types.NodeID) []crypto.SigClaim {
	return []crypto.SigClaim{{Signer: from, Digest: m.SigDigest(), Sig: m.Sig}}
}

// Options tunes a Prime replica.
type Options struct {
	// MonitorBound is the leader-performance bound (the tightened
	// view-change timeout of the inner ordering engine). Zero defaults
	// to 30ms — far tighter than the default 250ms PBFT timeout, as
	// Prime's monitoring is calibrated to actual network round trips.
	MonitorBound time.Duration
	// Inner carries attack options through to the inner PBFT engine
	// (e.g. DelayAttack for X14's adversarial leader).
	Inner pbft.Options
}

type poKey struct {
	Origin   types.NodeID
	LocalSeq uint64
}

type poState struct {
	req    *types.Request
	digest types.Digest
	acks   map[types.NodeID]bool
	fed    bool
}

// eligHeap orders eligible requests by (LocalSeq, Origin) — the
// round-robin interleaving Prime uses for (partial) fairness.
type eligHeap []poKey

func (h eligHeap) Len() int { return len(h) }
func (h eligHeap) Less(i, j int) bool {
	if h[i].LocalSeq != h[j].LocalSeq {
		return h[i].LocalSeq < h[j].LocalSeq
	}
	return h[i].Origin < h[j].Origin
}
func (h eligHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eligHeap) Push(x any)   { *h = append(*h, x.(poKey)) }
func (h *eligHeap) Pop() any {
	old := *h
	n := len(old)
	k := old[n-1]
	*h = old[:n-1]
	return k
}

// tightEnv overrides the inner engine's config with the monitor bound.
type tightEnv struct {
	core.Env
	cfg core.Config
}

// Config implements core.Env.
func (e tightEnv) Config() core.Config { return e.cfg }

// Prime is the protocol state machine for one replica.
type Prime struct {
	env   core.Env
	opts  Options
	inner core.Protocol

	localSeq uint64
	po       map[poKey]*poState
	elig     eligHeap
	seen     map[types.RequestKey]bool
	done     map[types.RequestKey]bool
}

// New returns a Prime replica with default options.
func New(cfg core.Config) core.Protocol { return NewWithOptions(cfg, Options{}) }

// NewWithOptions returns a replica with explicit options.
func NewWithOptions(_ core.Config, opts Options) core.Protocol {
	return &Prime{opts: opts}
}

func init() {
	core.Register(core.Registration{
		Name:       "prime",
		Profile:    core.PrimeProfile(),
		NewReplica: New,
		NewClient: func(cfg core.Config) core.ClientProtocol {
			return core.NewRequester(core.RequesterOpts{SendToAll: true})
		},
	})
}

// Init implements core.Protocol.
func (p *Prime) Init(env core.Env) {
	p.env = env
	p.po = make(map[poKey]*poState)
	p.seen = make(map[types.RequestKey]bool)
	p.done = make(map[types.RequestKey]bool)
	if p.opts.MonitorBound == 0 {
		p.opts.MonitorBound = 30 * time.Millisecond
	}
	cfg := env.Config()
	cfg.ViewChangeTimeout = p.opts.MonitorBound
	p.inner = pbft.NewWithOptions(cfg, p.opts.Inner)
	p.inner.Init(tightEnv{Env: env, cfg: cfg})
}

// Inner exposes the ordering engine (tests observe its view).
func (p *Prime) Inner() core.Protocol { return p.inner }

// OnRequest implements core.Protocol: the preordering stage. Every
// replica acts as originator for requests it receives directly from
// clients (as in Prime); duplicates across origins are absorbed by the
// ordering stage's deduplication.
func (p *Prime) OnRequest(req *types.Request) {
	if p.done[req.Key()] {
		return
	}
	key := req.Key()
	if p.seen[key] {
		return
	}
	if !p.env.Verifier().VerifySig(req.Client, req.Digest(), req.Sig) {
		return
	}
	p.seen[key] = true
	p.localSeq++
	pr := &PORequestMsg{Origin: p.env.ID(), LocalSeq: p.localSeq, Req: req}
	pr.Sig = p.env.Signer().Sign(pr.SigDigest())
	p.env.Broadcast(pr)
	p.onPORequest(p.env.ID(), pr)
}

// OnMessage implements core.Protocol.
func (p *Prime) OnMessage(from types.NodeID, m types.Message) {
	switch mm := m.(type) {
	case *PORequestMsg:
		if mm.Origin != from {
			return
		}
		if !p.env.Verifier().VerifySig(from, mm.SigDigest(), mm.Sig) {
			return
		}
		p.onPORequest(from, mm)
	case *POAckMsg:
		if mm.Replica != from {
			return
		}
		if !p.env.Verifier().VerifySig(from, mm.SigDigest(), mm.Sig) {
			return
		}
		p.onPOAck(mm)
	default:
		p.inner.OnMessage(from, m)
	}
}

func (p *Prime) onPORequest(from types.NodeID, m *PORequestMsg) {
	k := poKey{m.Origin, m.LocalSeq}
	st := p.po[k]
	if st == nil {
		st = &poState{acks: make(map[types.NodeID]bool)}
		p.po[k] = st
	}
	if st.req != nil {
		return
	}
	st.req = m.Req
	st.digest = m.Req.Digest()
	// Acknowledge all-to-all (the quadratic phase robustness pays for).
	ack := &POAckMsg{Origin: m.Origin, LocalSeq: m.LocalSeq, Digest: st.digest, Replica: p.env.ID()}
	ack.Sig = p.env.Signer().Sign(ack.SigDigest())
	p.env.Broadcast(ack)
	st.acks[p.env.ID()] = true
	p.checkEligible(k, st)
}

func (p *Prime) onPOAck(m *POAckMsg) {
	k := poKey{m.Origin, m.LocalSeq}
	st := p.po[k]
	if st == nil {
		st = &poState{acks: make(map[types.NodeID]bool)}
		p.po[k] = st
	}
	if st.req != nil && st.digest != m.Digest {
		return
	}
	st.acks[m.Replica] = true
	p.checkEligible(k, st)
}

// checkEligible feeds requests with 2f+1 acknowledgements into the
// ordering stage in (localSeq, origin) order. Requests already executed
// (stamped redundantly by several origins) are dropped here.
func (p *Prime) checkEligible(k poKey, st *poState) {
	if st.fed || st.req == nil || len(st.acks) < p.env.Config().Quorum() {
		return
	}
	st.fed = true
	heap.Push(&p.elig, k)
	for p.elig.Len() > 0 {
		next := heap.Pop(&p.elig).(poKey)
		if s := p.po[next]; s != nil && s.req != nil {
			if !p.done[s.req.Key()] {
				p.inner.OnRequest(s.req)
			}
			delete(p.po, next)
		}
	}
}

// OnTimer implements core.Protocol.
func (p *Prime) OnTimer(id core.TimerID) { p.inner.OnTimer(id) }

// OnExecuted implements core.Protocol.
func (p *Prime) OnExecuted(seq types.SeqNum, batch *types.Batch, results [][]byte) {
	for _, req := range batch.Requests {
		delete(p.seen, req.Key())
		p.done[req.Key()] = true
	}
	p.inner.OnExecuted(seq, batch, results)
}
