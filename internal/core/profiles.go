package core

import "bftkit/internal/crypto"

// Canonical design-space profiles for every protocol implemented in this
// repository. Each is returned by value so callers can mutate copies
// (the design-choice functions do). choices_test.go checks that applying
// the paper's design choices to PBFTProfile reproduces the structure of
// these targets.

// PBFTProfile is the paper's driving example (§2.1): pessimistic, stable
// leader, clique topology, three ordering phases, full view-change,
// checkpointing, and proactive recovery.
func PBFTProfile() Profile {
	return Profile{
		Name:           "pbft",
		Description:    "Practical Byzantine Fault Tolerance (Castro & Liskov '99)",
		Strategy:       Pessimistic,
		Phases:         3,
		PhaseTopos:     []Topology{Star, Clique, Clique},
		Leader:         StableLeader,
		HasViewChange:  true,
		Checkpointing:  true,
		Recovery:       RecoveryProactive,
		ClientRoles:    RoleRequester,
		Replicas:       Term(3, 1),
		Quorum:         Term(2, 1),
		RepliesNeeded:  Term(1, 1),
		Topology:       Clique,
		AuthOrdering:   crypto.SchemeSig,
		AuthViewChange: crypto.SchemeSig,
		Responsive:     true,
		Timers:         []Timer{TimerViewChange, TimerWatchdog},
	}
}

// PBFTMACProfile is the authenticator-based PBFT variant [61].
func PBFTMACProfile() Profile {
	p := PBFTProfile()
	p.Name = "pbft-mac"
	p.Description = "PBFT with MAC authenticator vectors"
	p.AuthOrdering = crypto.SchemeMAC
	p.AuthViewChange = crypto.SchemeSig // view-change-acks replace signed new-views
	return p
}

// HotStuffProfile: linear, rotating leader, chained three-phase commit,
// threshold certificates, responsive (Pacemaker view synchronization).
func HotStuffProfile() Profile {
	return Profile{
		Name:          "hotstuff",
		Description:   "HotStuff (PODC'19): linearity and responsiveness",
		Strategy:      Pessimistic,
		Phases:        7, // proposal + three vote/broadcast rounds
		PhaseTopos:    []Topology{Star, Star, Star, Star, Star, Star, Star},
		Leader:        RotatingLeader,
		Checkpointing: true,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester,
		Replicas:      Term(3, 1),
		Quorum:        Term(2, 1),
		RepliesNeeded: Term(1, 1),
		Topology:      Star,
		AuthOrdering:  crypto.SchemeThreshold,
		AuthViewChange: crypto.SchemeThreshold,
		Responsive:    true,
		Timers:        []Timer{TimerViewSync},
		LoadBalancing: LBRotation,
	}
}

// HotStuff2Profile: the two-phase responsive variant (HotStuff-2).
func HotStuff2Profile() Profile {
	p := HotStuffProfile()
	p.Name = "hotstuff2"
	p.Description = "HotStuff-2 (2023): optimal two-phase responsive BFT"
	p.Phases = 5
	p.PhaseTopos = []Topology{Star, Star, Star, Star, Star}
	return p
}

// TendermintProfile: rotating leader, clique voting, non-responsive Δ
// wait on rotation (DC4), prevote/precommit timers.
func TendermintProfile() Profile {
	return Profile{
		Name:          "tendermint",
		Description:   "Tendermint (2014/2018): rotating leader, waits Δ",
		Strategy:      Optimistic,
		Assumptions:   []Assumption{AssumeSynchrony},
		Phases:        3, // propose, prevote, precommit
		PhaseTopos:    []Topology{Star, Clique, Clique},
		Leader:        RotatingLeader,
		Checkpointing: true,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester,
		Replicas:      Term(3, 1),
		Quorum:        Term(2, 1),
		RepliesNeeded: Term(1, 1),
		Topology:      Clique,
		AuthOrdering:  crypto.SchemeSig,
		AuthViewChange: crypto.SchemeSig,
		Responsive:    false,
		Timers:        []Timer{TimerQuorum, TimerViewSync},
		LoadBalancing: LBRotation,
	}
}

// SBFTProfile: linearized PBFT with an optimistic fast path on all 3f+1
// signatures (DC1 + DC6) and a τ3 fallback.
func SBFTProfile() Profile {
	return Profile{
		Name:          "sbft",
		Description:   "SBFT (DSN'19): collector linearization + fast path",
		Strategy:      Optimistic,
		Assumptions:   []Assumption{AssumeHonestBackups},
		Phases:        3, // pre-prepare, sign-share→collector, full-commit-proof
		PhaseTopos:    []Topology{Star, Star, Star},
		Leader:        StableLeader,
		HasViewChange: true,
		Checkpointing: true,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester,
		Replicas:      Term(3, 1),
		Quorum:        Term(2, 1),
		FastQuorum:    Term(3, 1),
		// The SBFT paper uses a threshold-signed execution proof so one
		// reply suffices; our replies are plainly signed, so the client
		// falls back to the classic f+1 matching-reply rule.
		RepliesNeeded: Term(1, 1),
		Topology:      Star,
		AuthOrdering:  crypto.SchemeThreshold,
		AuthViewChange: crypto.SchemeThreshold,
		Responsive:    false,
		Timers:        []Timer{TimerViewChange, TimerBackupFault},
	}
}

// ZyzzyvaProfile: speculative execution (DC8), client collects 3f+1
// matching speculative replies, repairer fallback.
func ZyzzyvaProfile() Profile {
	return Profile{
		Name:          "zyzzyva",
		Description:   "Zyzzyva (SOSP'07): speculative BFT",
		Strategy:      Optimistic,
		Speculative:   true,
		Assumptions:   []Assumption{AssumeHonestLeader, AssumeHonestBackups},
		Phases:        1,
		PhaseTopos:    []Topology{Star},
		Leader:        StableLeader,
		HasViewChange: true,
		Checkpointing: true,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester | RoleRepairer,
		Replicas:      Term(3, 1),
		Quorum:        Term(2, 1),
		RepliesNeeded: Term(3, 1),
		Topology:      Star,
		AuthOrdering:  crypto.SchemeSig,
		AuthViewChange: crypto.SchemeSig,
		Responsive:    false,
		Timers:        []Timer{TimerReply, TimerViewChange},
	}
}

// Zyzzyva5Profile: DC10 applied to Zyzzyva — 5f+1 replicas keep the fast
// path alive with up to f faulty replicas.
func Zyzzyva5Profile() Profile {
	p := ZyzzyvaProfile()
	p.Name = "zyzzyva5"
	p.Description = "Zyzzyva5: resilient speculative fast path (DC10)"
	p.Replicas = Term(5, 1)
	p.Quorum = Term(3, 1)
	p.RepliesNeeded = Term(4, 1)
	return p
}

// PoEProfile: speculative phase reduction (DC7) — execute on a 2f+1
// certificate, roll back if the view change disagrees.
func PoEProfile() Profile {
	return Profile{
		Name:          "poe",
		Description:   "Proof-of-Execution (EDBT'21): fault-tolerant speculation",
		Strategy:      Optimistic,
		Speculative:   true,
		Assumptions:   []Assumption{AssumeHonestBackups},
		Phases:        3, // propose, vote→collector, certify
		PhaseTopos:    []Topology{Star, Star, Star},
		Leader:        StableLeader,
		HasViewChange: true,
		Checkpointing: true,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester,
		Replicas:      Term(3, 1),
		Quorum:        Term(2, 1),
		FastQuorum:    Term(2, 1), // the speculative certificate quorum
		RepliesNeeded: Term(2, 1),
		Topology:      Star,
		AuthOrdering:  crypto.SchemeThreshold,
		AuthViewChange: crypto.SchemeThreshold,
		Responsive:    true,
		Timers:        []Timer{TimerViewChange},
	}
}

// CheapBFTProfile: optimistic replica reduction (DC5) — 2f+1 active
// replicas order and execute; f passive replicas absorb failures.
func CheapBFTProfile() Profile {
	return Profile{
		Name:           "cheapbft",
		Description:    "CheapBFT (EuroSys'12): composite agreement with active/passive replication",
		Strategy:       Optimistic,
		Assumptions:    []Assumption{AssumeHonestBackups},
		Phases:         3,
		PhaseTopos:     []Topology{Star, Clique, Clique},
		Leader:         StableLeader,
		HasViewChange:  true,
		Checkpointing:  true,
		Recovery:       RecoveryReactive,
		ClientRoles:    RoleRequester,
		Replicas:       Term(3, 1),
		Quorum:         Term(2, 1),
		ActiveReplicas: Term(2, 1),
		RepliesNeeded:  Term(1, 1),
		Topology:       Clique,
		AuthOrdering:   crypto.SchemeSig,
		AuthViewChange: crypto.SchemeSig,
		Responsive:     false,
		Timers:         []Timer{TimerViewChange, TimerBackupFault},
	}
}

// FaBProfile: fast Byzantine consensus (DC2) — 5f+1 replicas, two phases.
func FaBProfile() Profile {
	return Profile{
		Name:          "fab",
		Description:   "FaB Paxos (TDSC'06): two-phase consensus with 5f+1 replicas",
		Strategy:      Pessimistic,
		Phases:        2,
		PhaseTopos:    []Topology{Star, Clique},
		Leader:        StableLeader,
		HasViewChange: true,
		Checkpointing: true,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester,
		Replicas:      Term(5, 1),
		Quorum:        Term(4, 1),
		RepliesNeeded: Term(1, 1),
		Topology:      Clique,
		AuthOrdering:  crypto.SchemeSig,
		AuthViewChange: crypto.SchemeSig,
		Responsive:    true,
		Timers:        []Timer{TimerViewChange},
	}
}

// QUProfile: optimistic conflict-free (DC9) — clients propose directly
// to a quorum; no ordering phases as long as operations don't conflict.
func QUProfile() Profile {
	return Profile{
		Name:          "qu",
		Description:   "Q/U (SOSP'05): fault-scalable quorum objects",
		Strategy:      Optimistic,
		Assumptions:   []Assumption{AssumeConflictFree, AssumeHonestClients},
		Phases:        1,
		PhaseTopos:    []Topology{Star},
		Leader:        StableLeader, // leaderless; no view change
		Checkpointing: false,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester | RoleProposer | RoleRepairer,
		Replicas:      Term(5, 1),
		Quorum:        Term(4, 1),
		RepliesNeeded: Term(4, 1),
		Topology:      Star,
		AuthOrdering:  crypto.SchemeSig,
		AuthViewChange: crypto.SchemeSig,
		Responsive:    true,
		Timers:        []Timer{TimerReply},
		LoadBalancing: LBMultiLeader,
	}
}

// PrimeProfile: robust BFT (DC12) — preordering with order vectors plus
// leader performance monitoring.
func PrimeProfile() Profile {
	return Profile{
		Name:          "prime",
		Description:   "Prime (TDSC'11): Byzantine replication under attack",
		Strategy:      Robust,
		Phases:        5, // po-request, po-ack, pre-prepare, prepare, commit
		PhaseTopos:    []Topology{Clique, Clique, Star, Clique, Clique},
		Leader:        StableLeader,
		HasViewChange: true,
		Checkpointing: true,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester,
		Replicas:      Term(3, 1),
		Quorum:        Term(2, 1),
		RepliesNeeded: Term(1, 1),
		Topology:      Clique,
		AuthOrdering:  crypto.SchemeSig,
		AuthViewChange: crypto.SchemeSig,
		Responsive:    false,
		Timers:        []Timer{TimerViewChange, TimerHeartbeat},
		Fairness:      FairnessPartial,
	}
}

// ThemisProfile: γ-order-fairness (DC13) — fair preordering batches with
// n > 4f/(2γ−1) replicas.
func ThemisProfile() Profile {
	return Profile{
		Name:          "themis",
		Description:   "Themis (SBC'22): fast, strong order-fairness",
		Strategy:      Pessimistic,
		Phases:        4, // preorder-batch + pre-prepare, prepare, commit
		PhaseTopos:    []Topology{Star, Star, Clique, Clique},
		Leader:        StableLeader,
		HasViewChange: true,
		Checkpointing: true,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester,
		Replicas:      Term(4, 1),
		// With n = 4f+1, ordering quorums must grow to 3f+1 to keep the
		// honest-intersection property.
		Quorum:        Term(3, 1),
		RepliesNeeded: Term(1, 1),
		Topology:      Clique,
		AuthOrdering:  crypto.SchemeSig,
		AuthViewChange: crypto.SchemeSig,
		Responsive:    false,
		Timers:        []Timer{TimerViewChange, TimerRound},
		Fairness:      FairnessGamma,
		Gamma:         1.0,
	}
}

// KauriProfile: tree-based load balancing (DC14) over a HotStuff-style
// pipeline; non-leaf faults trigger reconfiguration.
func KauriProfile() Profile {
	return Profile{
		Name:          "kauri",
		Description:   "Kauri (SOSP'21): pipelined tree dissemination and aggregation",
		Strategy:      Optimistic,
		Assumptions:   []Assumption{AssumeHonestInterior},
		Phases:        7,
		PhaseTopos:    []Topology{Tree, Tree, Tree, Tree, Tree, Tree, Tree},
		Leader:        RotatingLeader,
		Checkpointing: true,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester,
		Replicas:      Term(3, 1),
		Quorum:        Term(2, 1),
		RepliesNeeded: Term(1, 1),
		Topology:      Tree,
		AuthOrdering:  crypto.SchemeThreshold,
		AuthViewChange: crypto.SchemeThreshold,
		Responsive:    false,
		Timers:        []Timer{TimerViewSync},
		LoadBalancing: LBTree,
	}
}

// ChainProfile: chain topology (E2) in the style of Aliph/Chain — a
// pipeline with the head ordering and the tail replying.
func ChainProfile() Profile {
	return Profile{
		Name:          "chain",
		Description:   "Chain (Aliph, TOCS'15): pipelined replicas, optimistic",
		Strategy:      Optimistic,
		Assumptions:   []Assumption{AssumeHonestBackups, AssumeHonestClients},
		Phases:        1, // one chain traversal; latency is n hops (see docs)
		PhaseTopos:    []Topology{Chain},
		Leader:        StableLeader,
		Checkpointing: false,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester | RoleRepairer,
		Replicas:      Term(3, 1),
		Quorum:        Term(2, 1),
		RepliesNeeded: Term(1, 1),
		Topology:      Chain,
		AuthOrdering:  crypto.SchemeMAC,
		AuthViewChange: crypto.SchemeSig,
		Responsive:    true,
		Timers:        []Timer{TimerReply},
		LoadBalancing: LBChain,
	}
}

// RaftLiteProfile: the crash-fault-tolerant baseline from §1 (Raft/Paxos
// family). Outside the BFT design space (CrashOnly).
func RaftLiteProfile() Profile {
	return Profile{
		Name:          "raftlite",
		Description:   "Raft-style CFT baseline: 2f+1 replicas, leader append",
		Strategy:      Pessimistic,
		Phases:        2,
		PhaseTopos:    []Topology{Star, Star},
		Leader:        StableLeader,
		HasViewChange: true,
		Checkpointing: true,
		Recovery:      RecoveryNone,
		ClientRoles:   RoleRequester,
		Replicas:      Term(2, 1),
		Quorum:        Term(1, 1),
		RepliesNeeded: Term(0, 1),
		Topology:      Star,
		AuthOrdering:  crypto.SchemeMAC,
		AuthViewChange: crypto.SchemeMAC,
		Responsive:    true,
		Timers:        []Timer{TimerViewChange},
		CrashOnly:     true,
	}
}
