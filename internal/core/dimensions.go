package core

import (
	"errors"
	"fmt"
	"strings"

	"bftkit/internal/crypto"
)

// This file models §2.2 of the paper: the design space of partially
// synchronous BFT SMR protocols. A Profile is one point in that space; it
// captures the protocol-structure dimensions (P1–P6), environmental
// settings (E1–E4), and QoS features (Q1–Q2). The design choices of §2.3
// (choices.go) are functions between Profiles.

// Strategy is dimension P1: how the protocol commits transactions.
type Strategy int

// Commitment strategies.
const (
	Pessimistic Strategy = iota // no optimistic assumptions; replicas always agree first
	Optimistic                  // assumes some of a1–a6; may need a fallback
	Robust                      // hardened against a strong adversary (Prime, Aardvark)
)

// String implements fmt.Stringer.
func (s Strategy) String() string {
	return [...]string{"pessimistic", "optimistic", "robust"}[s]
}

// Assumption enumerates the optimistic assumptions a1–a6 of P1.
type Assumption int

// Optimistic assumptions (paper's a1–a6).
const (
	AssumeHonestLeader   Assumption = iota + 1 // a1: leader is non-faulty (Zyzzyva)
	AssumeHonestBackups                        // a2: backups are non-faulty (CheapBFT)
	AssumeHonestInterior                       // a3: non-leaf tree replicas non-faulty (Kauri)
	AssumeConflictFree                         // a4: concurrent requests touch disjoint data (Q/U)
	AssumeHonestClients                        // a5: clients are honest (Quorum)
	AssumeSynchrony                            // a6: network synchronous in a window (Tendermint)
)

// String implements fmt.Stringer.
func (a Assumption) String() string {
	switch a {
	case AssumeHonestLeader:
		return "a1:honest-leader"
	case AssumeHonestBackups:
		return "a2:honest-backups"
	case AssumeHonestInterior:
		return "a3:honest-interior"
	case AssumeConflictFree:
		return "a4:conflict-free"
	case AssumeHonestClients:
		return "a5:honest-clients"
	case AssumeSynchrony:
		return "a6:synchrony"
	}
	return fmt.Sprintf("a?(%d)", int(a))
}

// LeaderPolicy is dimension P3: how the leader is replaced.
type LeaderPolicy int

// Leader policies.
const (
	StableLeader   LeaderPolicy = iota // replaced only on suspicion (PBFT)
	RotatingLeader                     // replaced periodically (HotStuff, Tendermint)
)

// String implements fmt.Stringer.
func (p LeaderPolicy) String() string {
	return [...]string{"stable", "rotating"}[p]
}

// Topology is dimension E2: the communication pattern of ordering phases.
type Topology int

// Communication topologies.
const (
	Star   Topology = iota // leader/collector ↔ all: O(n) per phase
	Clique                 // all-to-all: O(n²) per phase
	Tree                   // leader at root, h levels: O(n) msgs, O(b) per-node load
	Chain                  // pipeline: O(n) msgs, O(1) per-node load per slot
)

// String implements fmt.Stringer.
func (t Topology) String() string {
	return [...]string{"star", "clique", "tree", "chain"}[t]
}

// Recovery is dimension P5.
type Recovery int

// Recovery mechanisms.
const (
	RecoveryNone Recovery = iota
	RecoveryReactive
	RecoveryProactive
	RecoveryHybrid
)

// String implements fmt.Stringer.
func (r Recovery) String() string {
	return [...]string{"none", "reactive", "proactive", "hybrid"}[r]
}

// ClientRole is dimension P6, a bitmask (a protocol can use several).
type ClientRole uint8

// Client roles.
const (
	RoleRequester ClientRole = 1 << iota
	RoleProposer
	RoleRepairer
)

// String implements fmt.Stringer.
func (c ClientRole) String() string {
	var parts []string
	if c&RoleRequester != 0 {
		parts = append(parts, "requester")
	}
	if c&RoleProposer != 0 {
		parts = append(parts, "proposer")
	}
	if c&RoleRepairer != 0 {
		parts = append(parts, "repairer")
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Timer enumerates the paper's timers τ1–τ8 (dimension E4).
type Timer int

// Protocol timers.
const (
	TimerReply        Timer = iota + 1 // τ1: waiting for replies (Zyzzyva)
	TimerViewChange                    // τ2: triggering view change (PBFT)
	TimerBackupFault                   // τ3: detecting backup failures (SBFT)
	TimerQuorum                        // τ4: quorum construction (Tendermint prevote/precommit)
	TimerViewSync                      // τ5: view synchronization (Tendermint)
	TimerRound                         // τ6: finishing a preordering round (Themis)
	TimerHeartbeat                     // τ7: performance check (Aardvark)
	TimerWatchdog                      // τ8: atomic recovery watchdog (PBFT-PR)
)

// String implements fmt.Stringer.
func (t Timer) String() string {
	names := [...]string{"", "τ1:reply", "τ2:view-change", "τ3:backup-fault",
		"τ4:quorum", "τ5:view-sync", "τ6:round", "τ7:heartbeat", "τ8:watchdog"}
	if int(t) < len(names) {
		return names[t]
	}
	return fmt.Sprintf("τ?(%d)", int(t))
}

// Fairness is dimension Q1.
type Fairness int

// Order-fairness levels.
const (
	FairnessNone    Fairness = iota
	FairnessPartial          // monitoring/preordering without a quantified bound (Prime, Aardvark)
	FairnessGamma            // γ-batch-order-fairness (Themis)
)

// String implements fmt.Stringer.
func (f Fairness) String() string {
	return [...]string{"none", "partial", "γ-fair"}[f]
}

// LoadBalance is dimension Q2.
type LoadBalance int

// Load-balancing approaches.
const (
	LBNone LoadBalance = iota
	LBRotation
	LBMultiLeader
	LBTree
	LBChain
)

// String implements fmt.Stringer.
func (l LoadBalance) String() string {
	return [...]string{"none", "rotation", "multi-leader", "tree", "chain"}[l]
}

// LinearTerm is an affine function of f: Coef*f + Const. The design space
// expresses replica counts and quorum sizes as such terms (3f+1, 2f+1,
// 4f+1, 5f−1, …).
type LinearTerm struct {
	Coef  int
	Const int
}

// Eval computes the term at a concrete f.
func (t LinearTerm) Eval(f int) int { return t.Coef*f + t.Const }

// IsZero reports an unset term.
func (t LinearTerm) IsZero() bool { return t.Coef == 0 && t.Const == 0 }

// String renders "3f+1", "2f", "5f-1", "4".
func (t LinearTerm) String() string {
	switch {
	case t.Coef == 0:
		return fmt.Sprintf("%d", t.Const)
	case t.Const == 0:
		return fmt.Sprintf("%df", t.Coef)
	case t.Const < 0:
		return fmt.Sprintf("%df%d", t.Coef, t.Const)
	default:
		return fmt.Sprintf("%df+%d", t.Coef, t.Const)
	}
}

// Term is shorthand for LinearTerm{c, k}.
func Term(coef, constant int) LinearTerm { return LinearTerm{coef, constant} }

// Profile is one point in the design space: a complete description of a
// BFT protocol along the paper's dimensions.
type Profile struct {
	Name        string
	Description string

	// P1: commitment strategy.
	Strategy    Strategy
	Speculative bool // executes before commitment (Zyzzyva, PoE)
	Assumptions []Assumption

	// P2: good-case commitment phases. PhaseTopos records the topology
	// of each ordering phase in order; its length equals Phases.
	Phases     int
	PhaseTopos []Topology

	// P3: view change.
	Leader        LeaderPolicy
	HasViewChange bool // separate view-change stage (stable-leader protocols)

	// P4/P5.
	Checkpointing bool
	Recovery      Recovery

	// P6.
	ClientRoles ClientRole

	// E1: replica counts as functions of f.
	Replicas       LinearTerm // minimum n
	Quorum         LinearTerm // ordering quorum
	FastQuorum     LinearTerm // optimistic fast-path quorum (zero if none)
	ActiveReplicas LinearTerm // active set under a2-style reduction (zero if all)
	RepliesNeeded  LinearTerm // matching replies a requester waits for

	// E2: dominant topology (PhaseTopos holds the per-phase detail).
	Topology Topology

	// E3: authentication per stage.
	AuthOrdering   crypto.Scheme
	AuthViewChange crypto.Scheme

	// E4.
	Responsive bool
	Timers     []Timer

	// Q1/Q2.
	Fairness      Fairness
	Gamma         float64 // only for FairnessGamma
	LoadBalancing LoadBalance

	// CrashOnly marks a crash-fault-tolerant baseline (Raft/Paxos
	// family, §1). CFT protocols sit outside the BFT design space, so
	// Validate skips the Byzantine lower bounds for them.
	CrashOnly bool
}

// HasAssumption reports whether the profile relies on assumption a.
func (p *Profile) HasAssumption(a Assumption) bool {
	for _, x := range p.Assumptions {
		if x == a {
			return true
		}
	}
	return false
}

// HasTimer reports whether the profile uses timer t.
func (p *Profile) HasTimer(t Timer) bool {
	for _, x := range p.Timers {
		if x == t {
			return true
		}
	}
	return false
}

// MinReplicas returns the minimum deployment size for tolerating f
// Byzantine replicas.
func (p *Profile) MinReplicas(f int) int { return p.Replicas.Eval(f) }

// QuorumSize returns the ordering quorum at a concrete f.
func (p *Profile) QuorumSize(f int) int { return p.Quorum.Eval(f) }

// GoodCaseMessages estimates the number of protocol messages needed to
// commit one batch with n replicas in the good case, from the per-phase
// topologies (dimension E2's complexity claims: star/tree/chain linear,
// clique quadratic). Client request/reply traffic is excluded.
func (p *Profile) GoodCaseMessages(n int) int {
	total := 0
	for _, t := range p.PhaseTopos {
		switch t {
		case Star:
			total += n - 1
		case Clique:
			total += n * (n - 1)
		case Tree:
			total += n - 1
		case Chain:
			total += n - 1
		}
	}
	return total
}

// MessageComplexity names the asymptotic per-slot message complexity.
func (p *Profile) MessageComplexity() string {
	for _, t := range p.PhaseTopos {
		if t == Clique {
			return "O(n^2)"
		}
	}
	return "O(n)"
}

// Validation errors.
var (
	ErrNoPhases           = errors.New("profile: protocol needs at least one ordering phase")
	ErrPhaseTopoMismatch  = errors.New("profile: PhaseTopos length must equal Phases")
	ErrSpecNotOptimistic  = errors.New("profile: speculative protocols are by definition optimistic")
	ErrOptimisticNoAssume = errors.New("profile: optimistic strategy requires at least one assumption a1–a6")
	ErrGammaRange         = errors.New("profile: order-fairness parameter γ must satisfy 0.5 < γ <= 1")
	ErrGammaReplicas      = errors.New("profile: γ-fairness needs n > 4f/(2γ-1) replicas")
	ErrThresholdTopology  = errors.New("profile: threshold signatures need a collector (star or tree topology)")
	ErrMACNonRepudiation  = errors.New("profile: MAC-authenticated collectors cannot prove quorums (no non-repudiation)")
	ErrRotatingViewChange = errors.New("profile: rotating-leader protocols fold leader replacement into ordering; no separate view-change stage")
	ErrQuorumIntersection = errors.New("profile: quorums must intersect in at least one honest replica")
	ErrTooFewReplicas     = errors.New("profile: below the 3f+1 lower bound without trusted hardware")
	ErrTwoPhaseBound      = errors.New("profile: two-phase commitment needs at least 5f-1 replicas (PODC'21 lower bound)")
	ErrReplyThreshold     = errors.New("profile: requester needs at least f+1 matching replies")
)

// Validate checks the structural consistency rules the tutorial states:
// quorum intersection, the 3f+1 and 5f−1 lower bounds, the γ-fairness
// replica requirement, topology/authentication compatibility, and the
// speculative/optimistic relationship.
func (p *Profile) Validate() error {
	if p.Phases < 1 {
		return ErrNoPhases
	}
	if len(p.PhaseTopos) != p.Phases {
		return fmt.Errorf("%w: %d topos for %d phases", ErrPhaseTopoMismatch, len(p.PhaseTopos), p.Phases)
	}
	if p.Speculative && p.Strategy == Pessimistic {
		return ErrSpecNotOptimistic
	}
	if p.Strategy == Optimistic && len(p.Assumptions) == 0 {
		return ErrOptimisticNoAssume
	}
	if p.Leader == RotatingLeader && p.HasViewChange {
		return ErrRotatingViewChange
	}
	if p.CrashOnly {
		return nil // CFT baselines skip the Byzantine bounds below
	}
	// E1 lower bounds, checked at f = 1..4.
	for f := 1; f <= 4; f++ {
		n := p.Replicas.Eval(f)
		if n < 3*f+1 {
			return fmt.Errorf("%w: n=%s gives %d at f=%d", ErrTooFewReplicas, p.Replicas, n, f)
		}
		if p.Phases == 2 && !p.Speculative && n < 5*f-1 {
			return fmt.Errorf("%w: n=%s gives %d at f=%d", ErrTwoPhaseBound, p.Replicas, n, f)
		}
		q := p.Quorum.Eval(f)
		// Two quorums must intersect in an honest replica: 2q-n >= f+1.
		if 2*q-n < f+1 {
			return fmt.Errorf("%w: n=%d q=%d f=%d", ErrQuorumIntersection, n, q, f)
		}
		if !p.RepliesNeeded.IsZero() && p.RepliesNeeded.Eval(f) < f+1 {
			return fmt.Errorf("%w: %s at f=%d", ErrReplyThreshold, p.RepliesNeeded, f)
		}
	}
	if p.Fairness == FairnessGamma {
		if !(p.Gamma > 0.5 && p.Gamma <= 1.0) {
			return fmt.Errorf("%w: γ=%v", ErrGammaRange, p.Gamma)
		}
		for f := 1; f <= 4; f++ {
			n := p.Replicas.Eval(f)
			if float64(n) <= 4*float64(f)/(2*p.Gamma-1) {
				return fmt.Errorf("%w: n=%d f=%d γ=%v", ErrGammaReplicas, n, f, p.Gamma)
			}
		}
	}
	if p.AuthOrdering == crypto.SchemeThreshold && p.Topology == Clique {
		return ErrThresholdTopology
	}
	if p.AuthOrdering == crypto.SchemeMAC && (p.Topology == Star || p.Topology == Tree) && p.Leader == RotatingLeader {
		// A rotating collector must prove it holds a quorum; MACs
		// cannot provide that proof (DC 11's non-repudiation argument).
		return ErrMACNonRepudiation
	}
	return nil
}

// Summary renders a one-line digest used by the bftspace CLI and X1.
func (p *Profile) Summary() string {
	spec := ""
	if p.Speculative {
		spec = "/speculative"
	}
	return fmt.Sprintf("%-12s n=%-5s q=%-5s phases=%d %-7s %-8s leader=%-8s auth=%-9s fair=%-7s resp=%v",
		p.Name, p.Replicas, p.Quorum, p.Phases, p.Topology, p.Strategy.String()+spec,
		p.Leader, p.AuthOrdering, p.Fairness, p.Responsive)
}
