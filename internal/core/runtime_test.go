package core

import (
	"math/rand"
	"testing"
	"time"

	"bftkit/internal/crypto"
	"bftkit/internal/kvstore"
	"bftkit/internal/types"
)

// fakeDriver drives a single replica without a network: sends are
// captured, timers fire only when the test releases them.
type fakeDriver struct {
	now    time.Duration
	sent   []sentMsg
	timers []*fakeTimer
	rng    *rand.Rand
}

type sentMsg struct {
	To types.NodeID
	M  types.Message
}

type fakeTimer struct {
	at        time.Duration
	fn        func()
	cancelled bool
}

func newFakeDriver() *fakeDriver { return &fakeDriver{rng: rand.New(rand.NewSource(1))} }

func (d *fakeDriver) Now() time.Duration { return d.now }
func (d *fakeDriver) Rand() *rand.Rand   { return d.rng }
func (d *fakeDriver) Send(from, to types.NodeID, m types.Message) {
	d.sent = append(d.sent, sentMsg{To: to, M: m})
}
func (d *fakeDriver) After(t time.Duration, fn func()) func() {
	ft := &fakeTimer{at: d.now + t, fn: fn}
	d.timers = append(d.timers, ft)
	return func() { ft.cancelled = true }
}

// advance releases every timer due by now+dt.
func (d *fakeDriver) advance(dt time.Duration) {
	d.now += dt
	for _, t := range d.timers {
		if !t.cancelled && t.at <= d.now {
			t.cancelled = true
			t.fn()
		}
	}
}

// recorder is a protocol stub capturing runtime callbacks.
type recorder struct {
	env      Env
	executed []types.SeqNum
	timers   []TimerID
	msgs     []types.Message
	reqs     []*types.Request
}

func (r *recorder) Init(env Env)                      { r.env = env }
func (r *recorder) OnRequest(req *types.Request)      { r.reqs = append(r.reqs, req) }
func (r *recorder) OnMessage(_ types.NodeID, m types.Message) { r.msgs = append(r.msgs, m) }
func (r *recorder) OnTimer(id TimerID)                { r.timers = append(r.timers, id) }
func (r *recorder) OnExecuted(seq types.SeqNum, _ *types.Batch, _ [][]byte) {
	r.executed = append(r.executed, seq)
}

func req(seq uint64, op []byte) *types.Request {
	return &types.Request{Client: types.ClientIDBase, ClientSeq: seq, Op: op}
}

func newTestReplica(t *testing.T) (*Replica, *recorder, *fakeDriver) {
	t.Helper()
	d := newFakeDriver()
	rec := &recorder{}
	auth := crypto.NewAuthority(1)
	rep := NewReplica(0, DefaultConfig(4), d, rec, kvstore.New(), auth, Hooks{})
	rep.Start()
	return rep, rec, d
}

func TestRuntimeExecutesInSequenceOrder(t *testing.T) {
	rep, rec, _ := newTestReplica(t)
	b2 := types.NewBatch(req(2, kvstore.Put("b", []byte("2"))))
	b1 := types.NewBatch(req(1, kvstore.Put("a", []byte("1"))))
	rep.Commit(0, 2, b2, nil) // out of order: must park
	if len(rec.executed) != 0 {
		t.Fatal("executed before the gap was filled")
	}
	rep.Commit(0, 1, b1, nil)
	if len(rec.executed) != 2 || rec.executed[0] != 1 || rec.executed[1] != 2 {
		t.Fatalf("execution order %v", rec.executed)
	}
}

func TestRuntimeDuplicateRequestSkipped(t *testing.T) {
	rep, _, _ := newTestReplica(t)
	r := req(1, kvstore.Add("ctr", 1))
	rep.Commit(0, 1, types.NewBatch(r), nil)
	// The same request re-proposed at a later slot must not re-apply.
	rep.Commit(0, 2, types.NewBatch(r), nil)
	store := rep.App().(*kvstore.Store)
	v, _ := store.GetValue("ctr")
	if v[7] != 1 {
		t.Fatalf("counter applied twice: %v", v)
	}
}

func TestRuntimeSpecPromote(t *testing.T) {
	rep, _, _ := newTestReplica(t)
	b := types.NewBatch(req(1, kvstore.Put("x", []byte("spec"))))
	results := rep.SpecExecute(1, b)
	if len(results) != 1 {
		t.Fatal("speculative execution returned no results")
	}
	if rep.SpecTip() != 1 {
		t.Fatalf("spec tip %d", rep.SpecTip())
	}
	// A matching commit promotes without re-execution.
	store := rep.App().(*kvstore.Store)
	before := store.AppliedOps()
	rep.Commit(0, 1, b, nil)
	if store.AppliedOps() != before {
		t.Fatal("promotion re-executed the batch")
	}
	if rep.Ledger().LastExecuted() != 1 {
		t.Fatal("promotion did not advance the execution cursor")
	}
}

func TestRuntimeSpecRollbackOnDivergence(t *testing.T) {
	rep, _, _ := newTestReplica(t)
	spec := types.NewBatch(req(1, kvstore.Put("x", []byte("speculative"))))
	decided := types.NewBatch(req(2, kvstore.Put("x", []byte("decided"))))
	rep.SpecExecute(1, spec)
	histSpec := rep.HistoryDigest()
	rep.Commit(0, 1, decided, nil) // different batch decided at seq 1
	store := rep.App().(*kvstore.Store)
	v, _ := store.GetValue("x")
	if string(v) != "decided" {
		t.Fatalf("state after rollback+re-execution: %q", v)
	}
	if rep.HistoryDigest() == histSpec {
		t.Fatal("history digest not rewound on rollback")
	}
	// The speculative request's dedup mark must be gone: it can still
	// execute later.
	rep.Commit(0, 2, spec, nil)
	v, _ = store.GetValue("x")
	if string(v) != "speculative" {
		t.Fatalf("rolled-back request lost: %q", v)
	}
}

func TestRuntimeRollbackSpecAbove(t *testing.T) {
	rep, _, _ := newTestReplica(t)
	for s := types.SeqNum(1); s <= 3; s++ {
		rep.SpecExecute(s, types.NewBatch(req(uint64(s), kvstore.Put("k", []byte{byte(s)}))))
	}
	rep.RollbackSpecAbove(1)
	if rep.SpecTip() != 1 {
		t.Fatalf("spec tip %d after partial rollback", rep.SpecTip())
	}
	store := rep.App().(*kvstore.Store)
	v, _ := store.GetValue("k")
	if v[0] != 1 {
		t.Fatalf("state %v after rollback above 1", v)
	}
}

func TestRuntimeConflictingCommitIsViolation(t *testing.T) {
	d := newFakeDriver()
	var violation error
	auth := crypto.NewAuthority(1)
	rep := NewReplica(0, DefaultConfig(4), d, &recorder{}, kvstore.New(), auth, Hooks{
		OnViolation: func(_ types.NodeID, err error) { violation = err },
	})
	rep.Start()
	rep.Commit(0, 1, types.NewBatch(req(1, kvstore.Put("a", nil))), nil)
	rep.Commit(0, 1, types.NewBatch(req(2, kvstore.Put("b", nil))), nil)
	if violation == nil {
		t.Fatal("conflicting commit not reported as a safety violation")
	}
}

func TestRuntimeTimers(t *testing.T) {
	rep, rec, d := newTestReplica(t)
	id := TimerID{Name: "x", Seq: 1}
	rep.SetTimer(id, 10*time.Millisecond)
	d.advance(5 * time.Millisecond)
	if len(rec.timers) != 0 {
		t.Fatal("timer fired early")
	}
	// Re-arming resets the deadline.
	rep.SetTimer(id, 10*time.Millisecond)
	d.advance(6 * time.Millisecond)
	if len(rec.timers) != 0 {
		t.Fatal("re-armed timer fired on the old deadline")
	}
	d.advance(5 * time.Millisecond)
	if len(rec.timers) != 1 || rec.timers[0] != id {
		t.Fatalf("timer delivery %v", rec.timers)
	}
	rep.SetTimer(id, time.Millisecond)
	rep.StopTimer(id)
	d.advance(time.Hour)
	if len(rec.timers) != 1 {
		t.Fatal("stopped timer fired")
	}
}

func TestRuntimeStopSilences(t *testing.T) {
	rep, rec, d := newTestReplica(t)
	rep.SetTimer(TimerID{Name: "x"}, time.Millisecond)
	rep.Stop()
	d.advance(time.Hour)
	rep.Deliver(1, &RequestMsg{Req: req(1, kvstore.Noop())})
	if len(rec.timers) != 0 || len(rec.reqs) != 0 {
		t.Fatal("stopped replica processed events")
	}
	rep.Send(1, &ForwardMsg{})
	if len(d.sent) != 0 {
		t.Fatal("stopped replica sent messages")
	}
}

func TestRuntimeBroadcastExcludesSelf(t *testing.T) {
	rep, _, d := newTestReplica(t)
	rep.Broadcast(&ForwardMsg{})
	if len(d.sent) != 3 {
		t.Fatalf("broadcast to %d peers, want 3", len(d.sent))
	}
	for _, s := range d.sent {
		if s.To == 0 {
			t.Fatal("broadcast included self")
		}
	}
}

func TestRuntimeReplySigned(t *testing.T) {
	rep, _, d := newTestReplica(t)
	rep.Reply(&types.Reply{Client: types.ClientIDBase, ClientSeq: 1, Result: []byte("r")})
	if len(d.sent) != 1 || d.sent[0].To != types.ClientIDBase {
		t.Fatalf("reply routing %v", d.sent)
	}
	rm := d.sent[0].M.(*ReplyMsg)
	auth := crypto.NewAuthority(1)
	if !auth.Verifier().VerifySig(0, rm.R.Digest(), rm.R.Sig) {
		t.Fatal("reply signature invalid")
	}
}

func TestRequestDeliveryRouting(t *testing.T) {
	rep, rec, _ := newTestReplica(t)
	rep.Deliver(types.ClientIDBase, &RequestMsg{Req: req(1, kvstore.Noop())})
	if len(rec.reqs) != 1 {
		t.Fatal("RequestMsg not routed to OnRequest")
	}
	rep.Deliver(1, &ForwardMsg{Req: req(2, kvstore.Noop())})
	if len(rec.msgs) != 1 {
		t.Fatal("other messages not routed to OnMessage")
	}
}
