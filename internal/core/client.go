package core

import (
	"fmt"
	"math/rand"
	"time"

	"bftkit/internal/crypto"
	"bftkit/internal/types"
)

// ClientHooks are the harness's observation points on the client side.
type ClientHooks struct {
	// OnDone fires when a request completes with a verified result.
	OnDone func(id types.NodeID, req *types.Request, result []byte, at time.Duration)
	Logf   func(format string, args ...any)
}

// Client is the runtime adapting one ClientProtocol to a Driver,
// mirroring Replica on the client side.
type Client struct {
	id       types.NodeID
	cfg      Config
	driver   Driver
	proto    ClientProtocol
	signer   *crypto.Signer
	verifier *crypto.Verifier
	hooks    ClientHooks
	timers   map[TimerID]func()
	stopped  bool
}

// NewClient wires a client protocol to its substrate.
func NewClient(id types.NodeID, cfg Config, driver Driver, proto ClientProtocol,
	auth *crypto.Authority, hooks ClientHooks) *Client {
	return &Client{
		id:       id,
		cfg:      cfg,
		driver:   driver,
		proto:    proto,
		signer:   auth.Signer(id),
		verifier: auth.VerifierFor(id),
		hooks:    hooks,
		timers:   make(map[TimerID]func()),
	}
}

// Start initializes the client protocol.
func (c *Client) Start() { c.proto.Init(c) }

// Stop cancels timers and ignores further events.
func (c *Client) Stop() {
	c.stopped = true
	for id, cancel := range c.timers {
		cancel()
		delete(c.timers, id)
	}
}

// Submit signs and hands a request to the client protocol.
func (c *Client) Submit(req *types.Request) {
	if c.stopped {
		return
	}
	req.Client = c.id
	if len(req.Sig) == 0 {
		req.Sig = c.signer.Sign(req.Digest())
	}
	c.proto.Submit(req)
}

// Deliver implements the driver-facing receive path.
func (c *Client) Deliver(from types.NodeID, m types.Message) {
	if c.stopped {
		return
	}
	c.proto.OnMessage(from, m)
}

// --- ClientEnv implementation ---

// ID implements ClientEnv.
func (c *Client) ID() types.NodeID { return c.id }

// N implements ClientEnv.
func (c *Client) N() int { return c.cfg.N }

// F implements ClientEnv.
func (c *Client) F() int { return c.cfg.F }

// Config implements ClientEnv.
func (c *Client) Config() Config { return c.cfg }

// Replicas implements ClientEnv.
func (c *Client) Replicas() []types.NodeID { return c.cfg.AllReplicas() }

// Send implements ClientEnv.
func (c *Client) Send(to types.NodeID, m types.Message) {
	if c.stopped {
		return
	}
	c.driver.Send(c.id, to, m)
}

// BroadcastReplicas implements ClientEnv.
func (c *Client) BroadcastReplicas(m types.Message) {
	for i := 0; i < c.cfg.N; i++ {
		c.Send(types.NodeID(i), m)
	}
}

// SetTimer implements ClientEnv.
func (c *Client) SetTimer(id TimerID, d time.Duration) {
	if c.stopped {
		return
	}
	if cancel, ok := c.timers[id]; ok {
		cancel()
	}
	c.timers[id] = c.driver.After(d, func() {
		if c.stopped {
			return
		}
		delete(c.timers, id)
		c.proto.OnTimer(id)
	})
}

// StopTimer implements ClientEnv.
func (c *Client) StopTimer(id TimerID) {
	if cancel, ok := c.timers[id]; ok {
		cancel()
		delete(c.timers, id)
	}
}

// Now implements ClientEnv.
func (c *Client) Now() time.Duration { return c.driver.Now() }

// Rand implements ClientEnv.
func (c *Client) Rand() *rand.Rand { return c.driver.Rand() }

// Signer implements ClientEnv.
func (c *Client) Signer() *crypto.Signer { return c.signer }

// Verifier implements ClientEnv.
func (c *Client) Verifier() *crypto.Verifier { return c.verifier }

// Done implements ClientEnv.
func (c *Client) Done(req *types.Request, result []byte) {
	if c.hooks.OnDone != nil {
		c.hooks.OnDone(c.id, req, result, c.Now())
	}
}

// Logf implements ClientEnv.
func (c *Client) Logf(format string, args ...any) {
	if c.hooks.Logf != nil {
		c.hooks.Logf(fmt.Sprintf("t=%-12v %v: ", c.Now(), c.id)+format, args...)
	}
}

// RequesterOpts configures the generic requester client (dimension P6):
// where requests are sent and how many matching replies constitute a
// verified result.
type RequesterOpts struct {
	// SendToAll broadcasts requests to every replica instead of sending
	// to the presumed leader first (protocols with preordering or
	// client-driven dissemination need this).
	SendToAll bool
	// RepliesNeeded returns the matching-reply threshold given f.
	// Defaults to f+1 (PBFT).
	RepliesNeeded func(f int) int
	// VerifyReplySigs makes the client check each reply signature
	// before counting it (costs one verification per reply).
	VerifyReplySigs bool
}

// Requester is the standard BFT client: send the request, wait for a
// threshold of matching replies, retransmit to everyone on timeout (τ1).
// Most protocols in the repository use it unchanged; Zyzzyva and Q/U
// ship their own repairer/proposer clients.
type Requester struct {
	Opts RequesterOpts

	env      ClientEnv
	viewHint types.View
	pending  map[uint64]*pendingReq
}

type pendingReq struct {
	req *types.Request
	// votes groups reply digests by result content; values are sets of
	// replicas that reported that result.
	votes map[string]map[types.NodeID]bool
	done  bool
}

// NewRequester returns a requester with the given options.
func NewRequester(opts RequesterOpts) *Requester {
	if opts.RepliesNeeded == nil {
		opts.RepliesNeeded = func(f int) int { return f + 1 }
	}
	return &Requester{Opts: opts, pending: make(map[uint64]*pendingReq)}
}

// Init implements ClientProtocol.
func (r *Requester) Init(env ClientEnv) { r.env = env }

func (r *Requester) timerID(clientSeq uint64) TimerID {
	return TimerID{Name: "client-retry", Seq: types.SeqNum(clientSeq)}
}

// Submit implements ClientProtocol.
func (r *Requester) Submit(req *types.Request) {
	p := &pendingReq{req: req, votes: make(map[string]map[types.NodeID]bool)}
	r.pending[req.ClientSeq] = p
	msg := &RequestMsg{Req: req}
	if r.Opts.SendToAll {
		r.env.BroadcastReplicas(msg)
	} else {
		r.env.Send(r.env.Config().LeaderOf(r.viewHint), msg)
	}
	r.env.SetTimer(r.timerID(req.ClientSeq), r.env.Config().RequestTimeout)
}

// OnMessage implements ClientProtocol.
func (r *Requester) OnMessage(from types.NodeID, m types.Message) {
	rm, ok := m.(*ReplyMsg)
	if !ok {
		return
	}
	rep := rm.R
	p := r.pending[rep.ClientSeq]
	if p == nil || p.done {
		return
	}
	if r.Opts.VerifyReplySigs {
		if rep.Replica != from || !r.env.Verifier().VerifySig(from, rep.Digest(), rep.Sig) {
			return
		}
	}
	if rep.View > r.viewHint {
		r.viewHint = rep.View
	}
	key := string(rep.Result)
	set := p.votes[key]
	if set == nil {
		set = make(map[types.NodeID]bool)
		p.votes[key] = set
	}
	// Votes are keyed by the authenticated sender, not the claimed
	// rep.Replica: with signature checks off, one Byzantine replica
	// could otherwise stuff f+1 matching votes under forged identities.
	set[from] = true
	if len(set) >= r.Opts.RepliesNeeded(r.env.F()) {
		p.done = true
		r.env.StopTimer(r.timerID(rep.ClientSeq))
		delete(r.pending, rep.ClientSeq)
		r.env.Done(p.req, rep.Result)
	}
}

// OnTimer implements ClientProtocol: retransmit to all replicas, the
// classic PBFT fallback that also routes around a faulty leader.
func (r *Requester) OnTimer(id TimerID) {
	if id.Name != "client-retry" {
		return
	}
	p := r.pending[uint64(id.Seq)]
	if p == nil || p.done {
		return
	}
	r.env.BroadcastReplicas(&RequestMsg{Req: p.req})
	r.env.SetTimer(id, r.env.Config().RequestTimeout)
}
