package core

import (
	"sort"

	"bftkit/internal/ledger"
	"bftkit/internal/types"
)

// CheckpointManager implements the paper's checkpointing stage (P4) as a
// reusable sub-protocol: periodically snapshot the application, exchange
// checkpoint messages, declare a checkpoint stable on 2f+1 matching
// votes, garbage-collect the log below it, and bring in-dark replicas up
// to date through state transfer. It is decentralized — no leader is
// involved — exactly as PBFT does it.
//
// Protocols embed a manager and delegate: call OnExecuted from their
// OnExecuted, and offer unrecognized messages to OnMessage (which reports
// whether it consumed them).
type CheckpointManager struct {
	env Env

	// votes[seq][replica] = claimed state hash.
	votes map[types.SeqNum]map[types.NodeID]types.Digest
	// expected remembers the hash of a stable checkpoint we are
	// fetching state for, so a malicious snapshot can be rejected.
	expected map[types.SeqNum]types.Digest
	fetching bool
	// fetchSeq/fetchTries drive fetch retries: the transport is lossy,
	// so a single FetchStateMsg (or its StateMsg response) can vanish in
	// reconnect churn. Every newer certified checkpoint re-requests,
	// rotating through the voters, until a snapshot lands — without
	// this an in-dark replica whose one fetch was dropped stays at its
	// boot state forever while the cluster commits past it.
	fetchSeq   types.SeqNum
	fetchTries int

	// StableCount counts checkpoints this replica has stabilized
	// (experiment X13 reads it).
	StableCount int

	// Fastforwarded, when set, is called after state transfer jumps the
	// ledger past slots this replica never saw (no OnExecuted fires for
	// them). Protocols whose progress variable is derived from executed
	// slots — tendermint's height — resync it here; without this a
	// caught-up replica keeps its stale height and becomes a proposer
	// that never proposes.
	Fastforwarded func(seq types.SeqNum)
}

// NewCheckpointManager returns a manager bound to env.
func NewCheckpointManager(env Env) *CheckpointManager {
	return &CheckpointManager{
		env:      env,
		votes:    make(map[types.SeqNum]map[types.NodeID]types.Digest),
		expected: make(map[types.SeqNum]types.Digest),
	}
}

// Interval returns the configured checkpoint window (0 = disabled).
func (cm *CheckpointManager) Interval() uint64 { return cm.env.Config().CheckpointInterval }

// OnExecuted must be called after every executed slot. At each window
// boundary it snapshots the application and broadcasts a checkpoint.
func (cm *CheckpointManager) OnExecuted(seq types.SeqNum) {
	iv := cm.Interval()
	if iv == 0 || uint64(seq)%iv != 0 {
		return
	}
	hash := cm.env.App().Hash()
	cm.env.Ledger().AddOwnCheckpoint(&ledger.Checkpoint{
		Seq:       seq,
		StateHash: hash,
		Snapshot:  cm.env.App().Snapshot(),
	})
	msg := &CheckpointMsg{Seq: seq, StateHash: hash, Replica: cm.env.ID()}
	msg.Sig = cm.env.Signer().Sign(msg.Digest())
	cm.recordVote(cm.env.ID(), seq, hash)
	cm.env.Broadcast(msg)
}

// OnMessage consumes checkpoint and state-transfer messages, returning
// true when the message was handled.
func (cm *CheckpointManager) OnMessage(from types.NodeID, m types.Message) bool {
	switch mm := m.(type) {
	case *CheckpointMsg:
		cm.onCheckpoint(from, mm)
		return true
	case *FetchStateMsg:
		cm.onFetch(from, mm)
		return true
	case *StateMsg:
		cm.onState(from, mm)
		return true
	}
	return false
}

func (cm *CheckpointManager) onCheckpoint(from types.NodeID, m *CheckpointMsg) {
	if m.Replica != from {
		return
	}
	if m.Seq <= cm.env.Ledger().LowWater() {
		return
	}
	if !cm.env.Verifier().VerifySig(from, m.Digest(), m.Sig) {
		return
	}
	cm.recordVote(from, m.Seq, m.StateHash)
}

func (cm *CheckpointManager) recordVote(from types.NodeID, seq types.SeqNum, hash types.Digest) {
	set := cm.votes[seq]
	if set == nil {
		set = make(map[types.NodeID]types.Digest)
		cm.votes[seq] = set
	}
	set[from] = hash
	cm.maybeStabilize(seq)
}

func (cm *CheckpointManager) maybeStabilize(seq types.SeqNum) {
	set := cm.votes[seq]
	counts := make(map[types.Digest][]types.NodeID)
	for id, h := range set {
		counts[h] = append(counts[h], id)
	}
	quorum := cm.env.Config().Quorum()
	for hash, voters := range counts {
		if len(voters) < quorum {
			continue
		}
		// Voter lists come out of a map; order them so downstream
		// choices (fetch target, recorded voter set) don't depend on
		// map iteration order — replays must be bit-identical.
		sort.Slice(voters, func(i, j int) bool { return voters[i] < voters[j] })
		led := cm.env.Ledger()
		if seq <= led.LowWater() {
			return
		}
		cp := &ledger.Checkpoint{Seq: seq, StateHash: hash, Voters: voters}
		if own := led.OwnCheckpoint(seq); own != nil && own.StateHash == hash {
			cp.Snapshot = own.Snapshot
		}
		if led.LastExecuted() < seq {
			// In-dark: the network moved past us (P4's second purpose).
			// Remember the certified hash and fetch the state from one
			// of the voters; each newer certified checkpoint retries
			// (rotating voters) in case the previous fetch was lost.
			cm.expected[seq] = hash
			if !cm.fetching || seq > cm.fetchSeq {
				cm.fetching = true
				cm.fetchSeq = seq
				var peers []types.NodeID
				for _, v := range voters {
					if v != cm.env.ID() {
						peers = append(peers, v)
					}
				}
				if len(peers) > 0 {
					cm.env.Send(peers[cm.fetchTries%len(peers)], &FetchStateMsg{Seq: seq})
					cm.fetchTries++
				}
			}
			return
		}
		led.SetStable(cp)
		cm.StableCount++
		delete(cm.votes, seq)
		// Drop vote state below the new low-water mark.
		for s := range cm.votes {
			if s <= seq {
				delete(cm.votes, s)
			}
		}
		return
	}
}

func (cm *CheckpointManager) onFetch(from types.NodeID, m *FetchStateMsg) {
	led := cm.env.Ledger()
	cp := led.OwnCheckpoint(m.Seq)
	if cp == nil {
		if latest := led.LatestOwnCheckpoint(); latest != nil && latest.Seq >= m.Seq {
			cp = latest
		}
	}
	if cp == nil || cp.Snapshot == nil {
		return
	}
	cm.env.Send(from, &StateMsg{
		Seq:       cp.Seq,
		StateHash: cp.StateHash,
		Snapshot:  cp.Snapshot,
		Entries:   led.CommittedAbove(cp.Seq),
	})
}

func (cm *CheckpointManager) onState(from types.NodeID, m *StateMsg) {
	cm.fetching = false
	led := cm.env.Ledger()
	if m.Seq <= led.LastExecuted() {
		return
	}
	// Only install snapshots whose hash was certified by a quorum.
	want, ok := cm.expected[m.Seq]
	if !ok || want != m.StateHash {
		return
	}
	if types.DigestBytes(m.Snapshot).IsZero() { // defensive; never true
		return
	}
	cm.env.RollbackSpecAbove(led.LastExecuted())
	if err := cm.env.App().Restore(m.Snapshot); err != nil {
		cm.env.Logf("state transfer: bad snapshot from %v: %v", from, err)
		return
	}
	if got := cm.env.App().Hash(); got != m.StateHash {
		cm.env.Logf("state transfer: hash mismatch from %v", from)
		return
	}
	led.Fastforward(m.Seq)
	led.SetStable(&ledger.Checkpoint{Seq: m.Seq, StateHash: m.StateHash})
	cm.StableCount++
	for s := range cm.expected {
		if s <= m.Seq {
			delete(cm.expected, s)
		}
	}
	cm.env.Logf("state transfer: fast-forwarded to seq %d", m.Seq)
	if cm.Fastforwarded != nil {
		cm.Fastforwarded(m.Seq)
	}
	// Replay the retained suffix the sender shipped along.
	for _, e := range m.Entries {
		cm.env.Commit(e.View, e.Seq, e.Batch, e.Proof)
	}
}
