// Package core is the heart of the reproduction: it models the paper's
// BFT design space (dimensions P1–P6, E1–E4, Q1–Q2), implements the
// fourteen design-choice transformations of §2.3 as executable functions
// over design-space points, and provides the replica runtime that adapts
// every surveyed protocol to a common substrate (Figure 1's lifecycle:
// ordering, execution, view-change, checkpointing, recovery).
package core

import (
	"math/rand"
	"time"

	"bftkit/internal/crypto"
	"bftkit/internal/ledger"
	"bftkit/internal/types"
)

// TimerID names a protocol timer instance. Protocols encode which of the
// paper's timers τ1–τ8 a name corresponds to in their own constants.
type TimerID struct {
	Name string
	View types.View
	Seq  types.SeqNum
}

// Protocol is the event interface every BFT protocol implements. All
// methods are invoked on a single goroutine per replica; implementations
// need no locking.
type Protocol interface {
	// Init is called once before any event, with the replica's
	// environment.
	Init(env Env)
	// OnRequest delivers a client request addressed to this replica.
	OnRequest(req *types.Request)
	// OnMessage delivers a protocol message from another participant.
	OnMessage(from types.NodeID, m types.Message)
	// OnTimer fires a timer previously set via Env.SetTimer.
	OnTimer(id TimerID)
	// OnExecuted notifies the protocol that the runtime executed a
	// committed slot, with per-request results; most protocols reply to
	// clients here.
	OnExecuted(seq types.SeqNum, batch *types.Batch, results [][]byte)
}

// Application is the deterministic replicated state machine (the
// "database" in Figure 1). kvstore.Store implements it.
type Application interface {
	Apply(op []byte) []byte
	SpecApply(op []byte) (result []byte, depth int)
	Rollback(targetDepth int)
	Promote(oldest int)
	SpecDepth() int
	Snapshot() []byte
	Restore(snap []byte) error
	Hash() types.Digest
}

// Env is the runtime environment a protocol runs against. It hides the
// driver (virtual-time simulator or TCP), the ledger, the application,
// and the crypto substrate behind one surface.
type Env interface {
	// Identity and configuration.
	ID() types.NodeID
	N() int
	F() int
	Config() Config
	Replicas() []types.NodeID

	// Communication. Broadcast sends to every replica except the
	// caller; protocols that count themselves into quorums do so
	// explicitly, matching the paper's presentation of PBFT.
	Send(to types.NodeID, m types.Message)
	Broadcast(m types.Message)

	// Timers (τ1–τ8 of dimension E4).
	SetTimer(id TimerID, d time.Duration)
	StopTimer(id TimerID)

	// Time and randomness — always virtual/seeded, never the wall clock.
	Now() time.Duration
	Rand() *rand.Rand

	// Authentication (dimension E3).
	Signer() *crypto.Signer
	Verifier() *crypto.Verifier
	Scheme() crypto.Scheme

	// Ordering/execution stage services. Commit records a durably
	// decided slot; the runtime executes committed slots in sequence
	// order and calls Protocol.OnExecuted for each.
	Commit(view types.View, seq types.SeqNum, b *types.Batch, proof *types.CommitProof)
	// SpecExecute speculatively executes a batch at seq (DC7/DC8);
	// results may later be kept (when Commit arrives with a matching
	// digest) or undone via RollbackSpecAbove.
	SpecExecute(seq types.SeqNum, b *types.Batch) [][]byte
	// RollbackSpecAbove undoes every speculative execution with
	// sequence number strictly greater than seq.
	RollbackSpecAbove(seq types.SeqNum)
	// HistoryDigest is the rolling digest of the executed history
	// (Zyzzyva's per-replica history authenticator).
	HistoryDigest() types.Digest
	Ledger() *ledger.Ledger
	App() Application

	// Reply signs and sends a reply to a client.
	Reply(r *types.Reply)

	// Instrumentation.
	ViewChanged(newView types.View)
	Logf(format string, args ...any)
}

// ClientProtocol is the client-side counterpart (dimension P6: requester,
// proposer, repairer clients). The workload layer pushes requests via
// Submit; the client reports completions through ClientEnv.Done.
type ClientProtocol interface {
	Init(env ClientEnv)
	Submit(req *types.Request)
	OnMessage(from types.NodeID, m types.Message)
	OnTimer(id TimerID)
}

// ClientEnv is the environment available to client protocols.
type ClientEnv interface {
	ID() types.NodeID
	N() int
	F() int
	Config() Config
	Replicas() []types.NodeID
	Send(to types.NodeID, m types.Message)
	BroadcastReplicas(m types.Message)
	SetTimer(id TimerID, d time.Duration)
	StopTimer(id TimerID)
	Now() time.Duration
	Rand() *rand.Rand
	Signer() *crypto.Signer
	Verifier() *crypto.Verifier
	// Done reports a request as complete with its result. The harness
	// measures end-to-end latency from Submit to Done.
	Done(req *types.Request, result []byte)
	Logf(format string, args ...any)
}
