package core

import (
	"testing"
	"time"

	"bftkit/internal/crypto"
	"bftkit/internal/types"
)

func newTestClient(t *testing.T, opts RequesterOpts) (*Client, *Requester, *fakeDriver, *[]string) {
	t.Helper()
	d := newFakeDriver()
	auth := crypto.NewAuthority(1)
	proto := NewRequester(opts)
	var done []string
	cl := NewClient(types.ClientIDBase, DefaultConfig(4), d, proto, auth, ClientHooks{
		OnDone: func(_ types.NodeID, _ *types.Request, result []byte, _ time.Duration) {
			done = append(done, string(result))
		},
	})
	cl.Start()
	return cl, proto, d, &done
}

func reply(replica types.NodeID, clientSeq uint64, result string, auth *crypto.Authority) *ReplyMsg {
	r := &types.Reply{
		Replica: replica, Client: types.ClientIDBase, ClientSeq: clientSeq,
		Result: []byte(result),
	}
	r.Sig = auth.Signer(replica).Sign(r.Digest())
	return &ReplyMsg{R: r}
}

func TestRequesterCompletesOnMatchingQuorum(t *testing.T) {
	cl, _, d, done := newTestClient(t, RequesterOpts{})
	cl.Submit(&types.Request{ClientSeq: 1, Op: []byte("op")})
	if len(d.sent) != 1 {
		t.Fatalf("initial send count %d (want leader only)", len(d.sent))
	}
	auth := crypto.NewAuthority(1)
	cl.Deliver(0, reply(0, 1, "ok", auth))
	if len(*done) != 0 {
		t.Fatal("completed on a single reply (f+1 needed)")
	}
	// A mismatching reply must not count toward the quorum.
	cl.Deliver(1, reply(1, 1, "bogus", auth))
	if len(*done) != 0 {
		t.Fatal("mismatching reply counted")
	}
	cl.Deliver(2, reply(2, 1, "ok", auth))
	if len(*done) != 1 || (*done)[0] != "ok" {
		t.Fatalf("done = %v", *done)
	}
	// Late replies for the finished request are ignored.
	cl.Deliver(3, reply(3, 1, "ok", auth))
	if len(*done) != 1 {
		t.Fatal("duplicate completion")
	}
}

func TestRequesterDuplicateReplicaNotDoubleCounted(t *testing.T) {
	cl, _, _, done := newTestClient(t, RequesterOpts{})
	cl.Submit(&types.Request{ClientSeq: 1, Op: []byte("op")})
	auth := crypto.NewAuthority(1)
	cl.Deliver(0, reply(0, 1, "ok", auth))
	cl.Deliver(0, reply(0, 1, "ok", auth)) // same replica again
	if len(*done) != 0 {
		t.Fatal("one replica's vote counted twice")
	}
}

func TestRequesterRetransmitsToAllOnTimeout(t *testing.T) {
	cl, _, d, _ := newTestClient(t, RequesterOpts{})
	cl.Submit(&types.Request{ClientSeq: 1, Op: []byte("op")})
	sent := len(d.sent)
	d.advance(DefaultConfig(4).RequestTimeout + time.Millisecond)
	// Retransmission goes to every replica (the PBFT fallback that
	// routes around a faulty leader).
	if len(d.sent)-sent != 4 {
		t.Fatalf("retransmitted to %d replicas, want 4", len(d.sent)-sent)
	}
}

func TestRequesterSendToAll(t *testing.T) {
	cl, _, d, _ := newTestClient(t, RequesterOpts{SendToAll: true})
	cl.Submit(&types.Request{ClientSeq: 1, Op: []byte("op")})
	if len(d.sent) != 4 {
		t.Fatalf("SendToAll sent %d", len(d.sent))
	}
}

func TestRequesterFollowsViewHint(t *testing.T) {
	cl, _, d, _ := newTestClient(t, RequesterOpts{})
	auth := crypto.NewAuthority(1)
	cl.Submit(&types.Request{ClientSeq: 1, Op: []byte("op")})
	// A reply from view 2 teaches the client the new leader.
	r := &types.Reply{Replica: 2, Client: types.ClientIDBase, ClientSeq: 1, View: 2, Result: []byte("ok")}
	r.Sig = auth.Signer(2).Sign(r.Digest())
	cl.Deliver(2, &ReplyMsg{R: r})
	cl.Deliver(3, func() *ReplyMsg {
		rr := &types.Reply{Replica: 3, Client: types.ClientIDBase, ClientSeq: 1, View: 2, Result: []byte("ok")}
		rr.Sig = auth.Signer(3).Sign(rr.Digest())
		return &ReplyMsg{R: rr}
	}())
	d.sent = nil
	cl.Submit(&types.Request{ClientSeq: 2, Op: []byte("op2")})
	if len(d.sent) != 1 || d.sent[0].To != 2 {
		t.Fatalf("next request went to %v, want the view-2 leader r2", d.sent)
	}
}

func TestRequesterVerifiesSignaturesWhenAsked(t *testing.T) {
	cl, _, _, done := newTestClient(t, RequesterOpts{VerifyReplySigs: true})
	cl.Submit(&types.Request{ClientSeq: 1, Op: []byte("op")})
	auth := crypto.NewAuthority(1)
	// A forged reply (signed by the wrong key) must not count.
	forged := &types.Reply{Replica: 0, Client: types.ClientIDBase, ClientSeq: 1, Result: []byte("ok")}
	forged.Sig = auth.Signer(3).Sign(forged.Digest())
	cl.Deliver(0, &ReplyMsg{R: forged})
	cl.Deliver(1, reply(1, 1, "ok", auth))
	if len(*done) != 0 {
		t.Fatal("forged reply counted toward the quorum")
	}
	cl.Deliver(2, reply(2, 1, "ok", auth))
	if len(*done) != 1 {
		t.Fatal("genuine quorum did not complete")
	}
}

func TestClientSignsRequests(t *testing.T) {
	cl, _, d, _ := newTestClient(t, RequesterOpts{})
	cl.Submit(&types.Request{ClientSeq: 1, Op: []byte("op")})
	rm := d.sent[0].M.(*RequestMsg)
	auth := crypto.NewAuthority(1)
	if !auth.Verifier().VerifySig(types.ClientIDBase, rm.Req.Digest(), rm.Req.Sig) {
		t.Fatal("request signature invalid")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	name := "test-proto-registry"
	Register(Registration{
		Name:       name,
		Profile:    PBFTProfile(),
		NewReplica: func(cfg Config) Protocol { return &recorder{} },
	})
	reg, ok := Lookup(name)
	if !ok {
		t.Fatal("registered protocol not found")
	}
	if reg.ClientFor(DefaultConfig(4)) == nil {
		t.Fatal("default client constructor failed")
	}
	found := false
	for _, n := range Names() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatal("Names() misses the registration")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Registration{Name: name, Profile: PBFTProfile(),
		NewReplica: func(cfg Config) Protocol { return &recorder{} }})
}

func TestAuthenticateVerifyHelpers(t *testing.T) {
	rep, _, _ := newTestReplica(t)
	d := types.DigestBytes([]byte("payload"))
	sig, vec := Authenticate(rep, d)
	if sig == nil || vec != nil {
		t.Fatal("signature scheme must produce a signature, no vector")
	}
	if !VerifyAuth(rep, 0, d, sig, nil) {
		t.Fatal("self-authenticated digest rejected")
	}
	if VerifyAuth(rep, 1, d, sig, nil) {
		t.Fatal("signature accepted under the wrong identity")
	}
}

func TestRequesterVotesKeyedByAuthenticatedSender(t *testing.T) {
	// One Byzantine replica mails f+1 replies with the same fabricated
	// result, each claiming a different replica identity. With
	// VerifyReplySigs off (the default) the signatures are not checked,
	// so the only defense is keying votes by the network-authenticated
	// sender: all stuffed votes collapse onto the one Byzantine node.
	cl, _, _, done := newTestClient(t, RequesterOpts{})
	cl.Submit(&types.Request{ClientSeq: 1, Op: []byte("op")})
	auth := crypto.NewAuthority(1)
	for claimed := types.NodeID(0); claimed < 2; claimed++ {
		m := reply(claimed, 1, "forged", auth)
		m.R.Sig = []byte("garbage")
		cl.Deliver(3, m) // every copy actually arrives from replica 3
	}
	if len(*done) != 0 {
		t.Fatalf("client accepted a vote-stuffed result: %v", *done)
	}
	// Honest replicas still complete the request with the true result.
	cl.Deliver(0, reply(0, 1, "ok", auth))
	cl.Deliver(1, reply(1, 1, "ok", auth))
	if len(*done) != 1 || (*done)[0] != "ok" {
		t.Fatalf("done = %v, want the honest result", *done)
	}
}

func TestRequesterRejectsIdentityMismatchWhenVerifying(t *testing.T) {
	// With signature checks on, a reply whose claimed identity differs
	// from the authenticated sender is discarded even if the signature
	// itself verifies for the claimed identity (a replayed third-party
	// reply must not count as the relayer's vote).
	cl, _, _, done := newTestClient(t, RequesterOpts{VerifyReplySigs: true})
	cl.Submit(&types.Request{ClientSeq: 1, Op: []byte("op")})
	auth := crypto.NewAuthority(1)
	cl.Deliver(3, reply(0, 1, "ok", auth)) // replica 3 relays replica 0's signed reply
	cl.Deliver(3, reply(1, 1, "ok", auth))
	if len(*done) != 0 {
		t.Fatal("relayed replies counted as the relayer's votes")
	}
	cl.Deliver(0, reply(0, 1, "ok", auth))
	cl.Deliver(1, reply(1, 1, "ok", auth))
	if len(*done) != 1 {
		t.Fatalf("done = %v", *done)
	}
}
