package core

import (
	"errors"
	"fmt"

	"bftkit/internal/crypto"
)

// This file implements §2.3 of the paper: the fourteen design choices,
// each a one-to-one function mapping a valid point of the design space to
// another valid point. Applying a choice to a profile that does not meet
// its preconditions returns an error describing the violated trade-off.
//
// The tests in choices_test.go verify the concrete mappings the paper
// names: Linearize(PBFT) has SBFT/HotStuff's structure, LeaderRotation ∘
// Linearize(PBFT) matches HotStuff, NonResponsiveRotation(PBFT) matches
// Tendermint, PhaseReduction(PBFT) matches FaB, SpeculativeExecution(PBFT)
// matches Zyzzyva, and so on.

// Choice is one executable design choice.
type Choice struct {
	ID      int
	Name    string
	Summary string
	Apply   func(Profile) (Profile, error)
}

// Errors shared by several choices.
var (
	ErrNoCliquePhase    = errors.New("choice: input protocol has no quadratic phase to linearize")
	ErrNotPBFTShape     = errors.New("choice: input must have 3f+1 replicas and 3 ordering phases (one linear, two quadratic)")
	ErrAlreadyRotating  = errors.New("choice: input already uses a rotating leader")
	ErrNotLinear        = errors.New("choice: input must be a linear (star topology) protocol")
	ErrTooFewPhases     = errors.New("choice: input has too few ordering phases to remove two")
	ErrNotOptimisticAll = errors.New("choice: resilience applies to protocols whose fast quorum is all replicas")
	ErrAlreadyRobust    = errors.New("choice: input is already robust")
	ErrAlreadyFair      = errors.New("choice: input already provides order-fairness")
	ErrNotMAC           = errors.New("choice: input stage is not MAC-authenticated")
	ErrAlreadySpec      = errors.New("choice: input is already speculative")
)

func cloneProfile(p Profile) Profile {
	p.Assumptions = append([]Assumption(nil), p.Assumptions...)
	p.Timers = append([]Timer(nil), p.Timers...)
	p.PhaseTopos = append([]Topology(nil), p.PhaseTopos...)
	return p
}

func (p *Profile) addAssumption(a Assumption) {
	if !p.HasAssumption(a) {
		p.Assumptions = append(p.Assumptions, a)
	}
}

func (p *Profile) addTimer(t Timer) {
	if !p.HasTimer(t) {
		p.Timers = append(p.Timers, t)
	}
}

func countClique(p Profile) int {
	n := 0
	for _, t := range p.PhaseTopos {
		if t == Clique {
			n++
		}
	}
	return n
}

// Linearize is Design Choice 1: replace each quadratic phase with two
// linear phases through a collector, paying phases for message
// complexity. The output requires (threshold) signatures because the
// collector must prove it holds a quorum.
func Linearize(p Profile) (Profile, error) {
	if countClique(p) == 0 {
		return Profile{}, ErrNoCliquePhase
	}
	out := cloneProfile(p)
	var topos []Topology
	for _, t := range out.PhaseTopos {
		if t == Clique {
			topos = append(topos, Star, Star)
		} else {
			topos = append(topos, t)
		}
	}
	out.PhaseTopos = topos
	out.Phases = len(topos)
	out.Topology = Star
	out.AuthOrdering = crypto.SchemeThreshold
	out.Name = p.Name + "+linear"
	out.Description = "DC1 applied: quadratic phases split through a collector"
	return out, out.Validate()
}

// PhaseReduction is Design Choice 2: trade replicas for phases — from
// 3f+1 replicas and 3 phases to 5f+1 replicas and 2 phases with a 4f+1
// quorum (FaB). The 5f−1 lower bound for two-step consensus is enforced
// by Profile.Validate.
func PhaseReduction(p Profile) (Profile, error) {
	if p.Replicas != Term(3, 1) || p.Phases != 3 || countClique(p) != 2 {
		return Profile{}, ErrNotPBFTShape
	}
	out := cloneProfile(p)
	out.Replicas = Term(5, 1)
	out.Quorum = Term(4, 1)
	out.Phases = 2
	out.PhaseTopos = []Topology{Star, Clique}
	out.Name = p.Name + "+fast"
	out.Description = "DC2 applied: two-phase commitment with 5f+1 replicas"
	return out, out.Validate()
}

// LeaderRotation is Design Choice 3: replace the stable leader with a
// rotating leader, eliminating the view-change stage and adding a
// quadratic phase (or two linear phases, when the input is linear) so
// each new leader learns the state of the system.
func LeaderRotation(p Profile) (Profile, error) {
	if p.Leader == RotatingLeader {
		return Profile{}, ErrAlreadyRotating
	}
	out := cloneProfile(p)
	out.Leader = RotatingLeader
	out.HasViewChange = false
	if out.Topology == Star || out.Topology == Tree {
		out.PhaseTopos = append(out.PhaseTopos, Star, Star)
	} else {
		out.PhaseTopos = append(out.PhaseTopos, Clique)
	}
	out.Phases = len(out.PhaseTopos)
	out.LoadBalancing = LBRotation
	if out.AuthOrdering == crypto.SchemeMAC {
		// A rotating collector must prove quorums: MACs cannot (DC11).
		out.AuthOrdering = crypto.SchemeSig
	}
	out.Name = p.Name + "+rotate"
	out.Description = "DC3 applied: rotating leader, view change folded into ordering"
	return out, out.Validate()
}

// NonResponsiveRotation is Design Choice 4: rotate the leader without
// adding phases, sacrificing responsiveness — the new leader waits Δ
// (timer τ5) before proposing, as in Tendermint and Casper.
func NonResponsiveRotation(p Profile) (Profile, error) {
	if p.Leader == RotatingLeader {
		return Profile{}, ErrAlreadyRotating
	}
	out := cloneProfile(p)
	out.Leader = RotatingLeader
	out.HasViewChange = false
	out.Responsive = false
	out.addTimer(TimerViewSync)
	out.addTimer(TimerQuorum)
	out.addAssumption(AssumeSynchrony)
	if out.Strategy == Pessimistic {
		out.Strategy = Optimistic
	}
	out.LoadBalancing = LBRotation
	out.Name = p.Name + "+nonresp-rotate"
	out.Description = "DC4 applied: rotating leader that waits Δ instead of adding phases"
	return out, out.Validate()
}

// OptimisticReplicaReduction is Design Choice 5: run consensus among
// 2f+1 active replicas assuming they are all non-faulty (a2), keeping f
// passive replicas that activate on failure (CheapBFT). n stays 3f+1.
func OptimisticReplicaReduction(p Profile) (Profile, error) {
	if !p.ActiveReplicas.IsZero() {
		return Profile{}, errors.New("choice: input already uses active/passive replication")
	}
	out := cloneProfile(p)
	out.ActiveReplicas = Term(2, 1)
	out.Strategy = Optimistic
	out.addAssumption(AssumeHonestBackups)
	out.addTimer(TimerBackupFault)
	out.Name = p.Name + "+cheap"
	out.Description = "DC5 applied: 2f+1 active replicas, f passive"
	return out, out.Validate()
}

// OptimisticPhaseReduction is Design Choice 6: in a linear protocol, the
// collector waits for signatures from all 3f+1 replicas (timer τ3) and
// skips the equivalent of the quadratic prepare phase (SBFT's fast path).
func OptimisticPhaseReduction(p Profile) (Profile, error) {
	if p.Topology != Star {
		return Profile{}, ErrNotLinear
	}
	if p.Phases < 4 {
		return Profile{}, ErrTooFewPhases
	}
	out := cloneProfile(p)
	out.PhaseTopos = out.PhaseTopos[:len(out.PhaseTopos)-2]
	out.Phases = len(out.PhaseTopos)
	out.FastQuorum = Term(3, 1)
	out.Strategy = Optimistic
	out.addAssumption(AssumeHonestBackups)
	out.addTimer(TimerBackupFault)
	out.Responsive = false // waiting for all replicas is not responsive
	out.Name = p.Name + "+optfast"
	out.Description = "DC6 applied: fast path on 3f+1 signatures, fallback on τ3"
	return out, out.Validate()
}

// SpeculativePhaseReduction is Design Choice 7: like DC6 but the
// collector waits only for 2f+1 signatures and replicas execute
// speculatively, accepting possible rollback (PoE).
func SpeculativePhaseReduction(p Profile) (Profile, error) {
	if p.Topology != Star {
		return Profile{}, ErrNotLinear
	}
	if p.Phases < 4 {
		return Profile{}, ErrTooFewPhases
	}
	if p.Speculative {
		return Profile{}, ErrAlreadySpec
	}
	out := cloneProfile(p)
	out.PhaseTopos = out.PhaseTopos[:len(out.PhaseTopos)-2]
	out.Phases = len(out.PhaseTopos)
	out.FastQuorum = Term(2, 1)
	out.Strategy = Optimistic
	out.Speculative = true
	out.addAssumption(AssumeHonestBackups)
	out.RepliesNeeded = Term(2, 1)
	out.Name = p.Name + "+spec"
	out.Description = "DC7 applied: speculative execution on a 2f+1 certificate"
	return out, out.Validate()
}

// SpeculativeExecution is Design Choice 8: drop the prepare and commit
// phases entirely; replicas execute on the leader's order and the client
// verifies 3f+1 matching speculative replies (Zyzzyva), falling back to
// collecting commit certificates as a repairer (timer τ1).
func SpeculativeExecution(p Profile) (Profile, error) {
	if p.Speculative {
		return Profile{}, ErrAlreadySpec
	}
	if p.Phases < 3 {
		return Profile{}, ErrTooFewPhases
	}
	out := cloneProfile(p)
	out.PhaseTopos = []Topology{Star}
	out.Phases = 1
	out.Topology = Star
	out.Strategy = Optimistic
	out.Speculative = true
	out.addAssumption(AssumeHonestLeader)
	out.addAssumption(AssumeHonestBackups)
	out.RepliesNeeded = Term(3, 1)
	out.ClientRoles |= RoleRepairer
	out.addTimer(TimerReply)
	out.Responsive = false // the client waits for all 3f+1 replicas
	out.Name = p.Name + "+zyzzyva"
	out.Description = "DC8 applied: speculative execution, client-verified"
	return out, out.Validate()
}

// OptimisticConflictFree is Design Choice 9: when requests are
// conflict-free (a4), drop ordering altogether — the client proposes
// directly to the replicas, which execute without communicating (Q/U).
func OptimisticConflictFree(p Profile) (Profile, error) {
	out := cloneProfile(p)
	out.PhaseTopos = []Topology{Star}
	out.Phases = 1
	out.Topology = Star
	out.Strategy = Optimistic
	out.addAssumption(AssumeConflictFree)
	out.addAssumption(AssumeHonestClients)
	out.ClientRoles |= RoleProposer
	out.Leader = StableLeader
	out.HasViewChange = false
	out.LoadBalancing = LBMultiLeader // every client drives its own quorum
	out.Name = p.Name + "+conflictfree"
	out.Description = "DC9 applied: client-proposed, zero ordering phases"
	return out, out.Validate()
}

// Resilience is Design Choice 10: add 2f replicas so an optimistic
// protocol whose fast quorum was "all replicas" tolerates f failures on
// its fast path (Zyzzyva5, Q/U's 5f+1 configuration).
func Resilience(p Profile) (Profile, error) {
	if p.FastQuorum.IsZero() && !p.Speculative && p.Strategy != Optimistic {
		return Profile{}, ErrNotOptimisticAll
	}
	out := cloneProfile(p)
	out.Replicas = Term(out.Replicas.Coef+2, out.Replicas.Const)
	if !out.FastQuorum.IsZero() {
		out.FastQuorum = Term(out.FastQuorum.Coef+1, out.FastQuorum.Const)
	}
	if !out.RepliesNeeded.IsZero() && out.RepliesNeeded.Coef >= 3 {
		out.RepliesNeeded = Term(out.RepliesNeeded.Coef+1, out.RepliesNeeded.Const)
	}
	out.Quorum = Term(out.Quorum.Coef+1, out.Quorum.Const)
	out.Name = p.Name + "5"
	out.Description = "DC10 applied: +2f replicas for f extra fast-path failures"
	return out, out.Validate()
}

// Authentication is Design Choice 11: upgrade a MAC-authenticated stage
// to signatures (non-repudiation), optionally compressing quorums of
// signatures into threshold signatures when a collector exists.
func Authentication(p Profile) (Profile, error) {
	if p.AuthOrdering != crypto.SchemeMAC && p.AuthViewChange != crypto.SchemeMAC {
		return Profile{}, ErrNotMAC
	}
	out := cloneProfile(p)
	if out.AuthOrdering == crypto.SchemeMAC {
		out.AuthOrdering = crypto.SchemeSig
	}
	if out.AuthViewChange == crypto.SchemeMAC {
		out.AuthViewChange = crypto.SchemeSig
	}
	if out.Topology == Star || out.Topology == Tree {
		out.AuthOrdering = crypto.SchemeThreshold
	}
	out.Name = p.Name + "+sig"
	out.Description = "DC11 applied: signatures for non-repudiation"
	return out, out.Validate()
}

// Robustify is Design Choice 12: add Prime-style preordering — replicas
// locally order and broadcast requests, acknowledge all-to-all, and
// exchange order vectors — bounding what a malicious leader can do and
// providing partial fairness.
func Robustify(p Profile) (Profile, error) {
	if p.Strategy == Robust {
		return Profile{}, ErrAlreadyRobust
	}
	out := cloneProfile(p)
	out.Strategy = Robust
	out.Speculative = false
	out.Assumptions = nil
	out.PhaseTopos = append([]Topology{Clique, Clique}, out.PhaseTopos...)
	out.Phases = len(out.PhaseTopos)
	out.addTimer(TimerHeartbeat)
	if out.Fairness == FairnessNone {
		out.Fairness = FairnessPartial
	}
	out.Name = p.Name + "+robust"
	out.Description = "DC12 applied: preordering + leader performance monitoring"
	return out, out.Validate()
}

// Fairify is Design Choice 13: add a Themis-style preordering phase in
// which clients broadcast requests and replicas ship locally ordered
// batches to the leader; γ-order-fairness then requires n > 4f/(2γ−1).
func Fairify(gamma float64) func(Profile) (Profile, error) {
	return func(p Profile) (Profile, error) {
		if p.Fairness == FairnessGamma {
			return Profile{}, ErrAlreadyFair
		}
		out := cloneProfile(p)
		out.PhaseTopos = append([]Topology{Star}, out.PhaseTopos...)
		out.Phases = len(out.PhaseTopos)
		out.Fairness = FairnessGamma
		out.Gamma = gamma
		out.addTimer(TimerRound)
		// Raise the replica requirement to satisfy n > 4f/(2γ−1), and
		// enlarge quorums so they still intersect in an honest replica:
		// with n = cf+1, a quorum needs ⌈(c+1)/2⌉·f + 1 members.
		need := 4.0 / (2*gamma - 1)
		coef := int(need)
		if float64(coef) < need {
			coef++
		}
		if out.Replicas.Coef < coef {
			out.Replicas = Term(coef, 1)
		}
		qCoef := (out.Replicas.Coef + 2) / 2
		if out.Quorum.Coef < qCoef {
			out.Quorum = Term(qCoef, 1)
		}
		out.Name = fmt.Sprintf("%s+fair(γ=%.2g)", p.Name, gamma)
		out.Description = "DC13 applied: γ-fair preordering"
		return out, out.Validate()
	}
}

// TreeLoadBalance is Design Choice 14: organize replicas in a tree with
// the leader at the root (Kauri), splitting each linear phase into h
// hops; non-leaf failures force a reconfiguration (assumption a3).
func TreeLoadBalance(p Profile) (Profile, error) {
	if p.Topology != Star {
		return Profile{}, ErrNotLinear
	}
	out := cloneProfile(p)
	for i, t := range out.PhaseTopos {
		if t == Star {
			out.PhaseTopos[i] = Tree
		}
	}
	out.Topology = Tree
	out.LoadBalancing = LBTree
	out.Strategy = Optimistic
	out.addAssumption(AssumeHonestInterior)
	out.Name = p.Name + "+tree"
	out.Description = "DC14 applied: tree dissemination/aggregation"
	return out, out.Validate()
}

// Choices lists all fourteen design choices in paper order. Fairify is
// instantiated at γ=1 (every correct replica's order respected).
var Choices = []Choice{
	{1, "linearization", "split quadratic phases through a collector (SBFT, HotStuff)", Linearize},
	{2, "phase-reduction", "5f+1 replicas buy a 2-phase commit (FaB)", PhaseReduction},
	{3, "leader-rotation", "rotate the leader, fold view change into ordering (HotStuff)", LeaderRotation},
	{4, "nonresponsive-rotation", "rotate without extra phases, wait Δ (Tendermint)", NonResponsiveRotation},
	{5, "optimistic-replica-reduction", "2f+1 active replicas, f passive (CheapBFT)", OptimisticReplicaReduction},
	{6, "optimistic-phase-reduction", "fast path on all 3f+1 signatures (SBFT)", OptimisticPhaseReduction},
	{7, "speculative-phase-reduction", "execute on a 2f+1 certificate, may roll back (PoE)", SpeculativePhaseReduction},
	{8, "speculative-execution", "execute on the leader's word, client verifies (Zyzzyva)", SpeculativeExecution},
	{9, "optimistic-conflict-free", "clients propose, replicas execute without ordering (Q/U)", OptimisticConflictFree},
	{10, "resilience", "+2f replicas tolerate f fast-path failures (Zyzzyva5)", Resilience},
	{11, "authentication", "MACs → signatures → threshold signatures", Authentication},
	{12, "robust", "preordering + monitoring against strong adversaries (Prime)", Robustify},
	{13, "fair", "γ-fair preordering (Themis)", Fairify(1.0)},
	{14, "tree-load-balancer", "tree topology spreads the leader's load (Kauri)", TreeLoadBalance},
}

// ChoiceByName finds a choice by its registry name.
func ChoiceByName(name string) (Choice, bool) {
	for _, c := range Choices {
		if c.Name == name {
			return c, true
		}
	}
	return Choice{}, false
}
