package core

import (
	"time"

	"bftkit/internal/crypto"
	"bftkit/internal/types"
)

// Config carries the deployment parameters shared by all protocols.
// Protocol-specific knobs live in each protocol package's Options struct.
type Config struct {
	N int // number of replicas
	F int // tolerated Byzantine faults

	// Scheme selects the authentication mode (dimension E3 / DC11).
	Scheme crypto.Scheme

	// BatchSize is the maximum number of requests ordered per consensus
	// instance; BatchTimeout bounds how long a leader waits to fill a
	// batch before proposing a partial one.
	BatchSize    int
	BatchTimeout time.Duration

	// CheckpointInterval is the window (in sequence numbers) between
	// checkpoints (dimension P4). Zero disables checkpointing.
	CheckpointInterval uint64

	// ViewChangeTimeout is the inactivity bound after which replicas
	// suspect the leader (timer τ2).
	ViewChangeTimeout time.Duration

	// Delta is the presumed post-GST synchrony bound used by
	// non-responsive protocols (Tendermint's wait, DC4).
	Delta time.Duration

	// RequestTimeout is the client's retransmission timeout (τ1).
	RequestTimeout time.Duration

	// HighWaterWindow bounds how far ahead of the stable checkpoint a
	// leader may assign sequence numbers (PBFT's [h, H] window).
	HighWaterWindow uint64
}

// DefaultConfig returns sensible laboratory defaults for n replicas.
func DefaultConfig(n int) Config {
	return Config{
		N:                  n,
		F:                  types.FaultThreshold(n),
		Scheme:             crypto.SchemeSig,
		BatchSize:          1,
		BatchTimeout:       2 * time.Millisecond,
		CheckpointInterval: 128,
		ViewChangeTimeout:  250 * time.Millisecond,
		Delta:              100 * time.Millisecond,
		RequestTimeout:     500 * time.Millisecond,
		HighWaterWindow:    4096,
	}
}

// Quorum returns the 2f+1 quorum size.
func (c Config) Quorum() int { return 2*c.F + 1 }

// WeakQuorum returns f+1, the smallest set guaranteed to contain an
// honest replica.
func (c Config) WeakQuorum() int { return c.F + 1 }

// AllReplicas returns the replica ID slice 0..N-1.
func (c Config) AllReplicas() []types.NodeID {
	ids := make([]types.NodeID, c.N)
	for i := range ids {
		ids[i] = types.NodeID(i)
	}
	return ids
}

// LeaderOf returns the leader of a view under the round-robin convention
// every protocol in this repository uses.
func (c Config) LeaderOf(v types.View) types.NodeID {
	return types.NodeID(uint64(v) % uint64(c.N))
}
