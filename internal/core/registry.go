package core

import (
	"fmt"
	"sort"
	"sync"
)

// Registration binds a design-space profile to runnable constructors.
// Protocol packages register themselves in init(); the harness and the
// CLIs look protocols up by name.
type Registration struct {
	Name    string
	Profile Profile
	// NewReplica builds a replica-side protocol instance.
	NewReplica func(cfg Config) Protocol
	// NewClient builds the protocol's client. Nil means the generic
	// requester with the profile's reply threshold.
	NewClient func(cfg Config) ClientProtocol
}

var (
	regMu    sync.Mutex
	registry = map[string]Registration{}
)

// Register adds a protocol to the global registry. It panics on
// duplicates or on a profile that fails validation — registration
// happens in init(), where failing fast is the right behavior.
func Register(r Registration) {
	if err := r.Profile.Validate(); err != nil {
		panic(fmt.Sprintf("core: registering %q with invalid profile: %v", r.Name, err))
	}
	if r.NewReplica == nil {
		panic(fmt.Sprintf("core: registering %q without a replica constructor", r.Name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[r.Name]; dup {
		panic(fmt.Sprintf("core: duplicate protocol registration %q", r.Name))
	}
	registry[r.Name] = r
}

// Lookup finds a registered protocol by name.
func Lookup(name string) (Registration, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	r, ok := registry[name]
	return r, ok
}

// Names returns all registered protocol names, sorted.
func Names() []string {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// ClientFor returns the protocol's client constructor, falling back to
// the generic requester parameterized by the profile.
func (r Registration) ClientFor(cfg Config) ClientProtocol {
	if r.NewClient != nil {
		return r.NewClient(cfg)
	}
	p := r.Profile
	return NewRequester(RequesterOpts{
		SendToAll: p.Fairness != FairnessNone || p.Strategy == Robust,
		RepliesNeeded: func(f int) int {
			if p.RepliesNeeded.IsZero() {
				return f + 1
			}
			return p.RepliesNeeded.Eval(f)
		},
	})
}
