package core

import (
	"bftkit/internal/crypto"
	"bftkit/internal/ledger"
	"bftkit/internal/types"
)

// RequestMsg carries a client request to a replica.
type RequestMsg struct {
	Req *types.Request
}

// Kind implements types.Message.
func (*RequestMsg) Kind() string { return "REQUEST" }

// RequestRef implements obsv.Keyed: a request message is about itself.
func (m *RequestMsg) RequestRef() types.RequestKey { return m.Req.Key() }

// SigClaims implements crypto.SigClaimer: the client's signature over
// the request digest, which every replica verifies on receipt.
func (m *RequestMsg) SigClaims(types.NodeID) []crypto.SigClaim {
	return []crypto.SigClaim{{Signer: m.Req.Client, Digest: m.Req.Digest(), Sig: m.Req.Sig}}
}

// ReplyMsg carries a replica's reply back to a client.
type ReplyMsg struct {
	R *types.Reply
}

// Kind implements types.Message.
func (*ReplyMsg) Kind() string { return "REPLY" }

// RequestRef implements obsv.Keyed. A reply carries both the request key
// and the consensus slot, making it the join point span reconstruction
// uses to link a client's request to the slot that ordered it.
func (m *ReplyMsg) RequestRef() types.RequestKey {
	return types.RequestKey{Client: m.R.Client, ClientSeq: m.R.ClientSeq}
}

// Slot implements obsv.Slotted.
func (m *ReplyMsg) Slot() (types.View, types.SeqNum) { return m.R.View, m.R.Seq }

// SigClaims implements crypto.SigClaimer: the replica's reply signature,
// which the client verifies before counting the vote.
func (m *ReplyMsg) SigClaims(types.NodeID) []crypto.SigClaim {
	return []crypto.SigClaim{{Signer: m.R.Replica, Digest: m.R.Digest(), Sig: m.R.Sig}}
}

// ReplyPayload exposes the signed reply for the forensics auditor's
// divergent-result cross-check (structural, like obsv.Keyed).
func (m *ReplyMsg) ReplyPayload() *types.Reply { return m.R }

// ForwardMsg relays a request from a backup to the current leader, the
// standard liveness mechanism when clients send to the wrong replica.
type ForwardMsg struct {
	Req *types.Request
}

// Kind implements types.Message.
func (*ForwardMsg) Kind() string { return "FORWARD" }

// RequestRef implements obsv.Keyed.
func (m *ForwardMsg) RequestRef() types.RequestKey { return m.Req.Key() }

// SigClaims implements crypto.SigClaimer: a forward relays the client's
// signed request, so the claim is the client's, not the forwarder's.
func (m *ForwardMsg) SigClaims(types.NodeID) []crypto.SigClaim {
	return []crypto.SigClaim{{Signer: m.Req.Client, Digest: m.Req.Digest(), Sig: m.Req.Sig}}
}

// CheckpointMsg announces a replica's checkpoint at a sequence number
// (dimension P4). Shared by every protocol that embeds CheckpointManager.
type CheckpointMsg struct {
	Seq       types.SeqNum
	StateHash types.Digest
	Replica   types.NodeID
	Sig       []byte
}

// Kind implements types.Message.
func (*CheckpointMsg) Kind() string { return "CHECKPOINT" }

// Digest hashes the checkpoint claim for signing.
func (m *CheckpointMsg) Digest() types.Digest {
	var h types.Hasher
	h.Str("checkpoint").U64(uint64(m.Seq)).Digest(m.StateHash).U64(uint64(m.Replica))
	return h.Sum()
}

// SigClaims implements crypto.SigClaimer: the announcing replica's
// signature over the checkpoint claim.
func (m *CheckpointMsg) SigClaims(types.NodeID) []crypto.SigClaim {
	return []crypto.SigClaim{{Signer: m.Replica, Digest: m.Digest(), Sig: m.Sig}}
}

// FetchStateMsg asks a peer for the snapshot behind a stable checkpoint
// (state transfer for in-dark replicas).
type FetchStateMsg struct {
	Seq types.SeqNum
}

// Kind implements types.Message.
func (*FetchStateMsg) Kind() string { return "FETCH-STATE" }

// StateMsg returns a checkpoint snapshot for state transfer.
type StateMsg struct {
	Seq       types.SeqNum
	StateHash types.Digest
	Snapshot  []byte
	// Entries are retained committed slots above the checkpoint so the
	// fetcher can also replay the recent suffix.
	Entries []*ledger.Entry
}

// Kind implements types.Message.
func (*StateMsg) Kind() string { return "STATE" }
