package core

import (
	"bftkit/internal/crypto"
	"bftkit/internal/types"
)

// Authenticate produces the authentication material for a broadcast
// message digest under the environment's scheme (dimension E3): a
// signature under SchemeSig/SchemeThreshold, or an authenticator vector
// (one MAC per replica, indexed by replica ID) under SchemeMAC.
func Authenticate(env Env, d types.Digest) (sig []byte, vec [][]byte) {
	if env.Scheme() == crypto.SchemeMAC {
		return nil, env.Signer().AuthVector(d, env.Replicas())
	}
	return env.Signer().Sign(d), nil
}

// VerifyAuth checks the authentication material attached to a message
// from `from` over digest d, under the environment's scheme.
func VerifyAuth(env Env, from types.NodeID, d types.Digest, sig []byte, vec [][]byte) bool {
	if env.Scheme() == crypto.SchemeMAC {
		idx := int(env.ID())
		if idx >= len(vec) || vec[idx] == nil {
			return false
		}
		return env.Verifier().VerifyMAC(from, env.ID(), d, vec[idx])
	}
	return env.Verifier().VerifySig(from, d, sig)
}
