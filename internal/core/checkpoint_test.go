package core

import (
	"testing"

	"bftkit/internal/crypto"
	"bftkit/internal/kvstore"
	"bftkit/internal/types"
)

// cpProto embeds a CheckpointManager the way protocols do.
type cpProto struct {
	recorder
	cm *CheckpointManager
}

func (p *cpProto) Init(env Env) {
	p.recorder.Init(env)
	p.cm = NewCheckpointManager(env)
}

func (p *cpProto) OnMessage(from types.NodeID, m types.Message) {
	if p.cm.OnMessage(from, m) {
		return
	}
	p.recorder.OnMessage(from, m)
}

func (p *cpProto) OnExecuted(seq types.SeqNum, b *types.Batch, results [][]byte) {
	p.recorder.OnExecuted(seq, b, results)
	p.cm.OnExecuted(seq)
}

// cpCluster wires k replicas with manual message shuttling.
type cpCluster struct {
	reps    []*Replica
	protos  []*cpProto
	drivers []*fakeDriver
	auth    *crypto.Authority
}

func newCPCluster(t *testing.T, n int, interval uint64) *cpCluster {
	t.Helper()
	c := &cpCluster{auth: crypto.NewAuthority(1)}
	cfg := DefaultConfig(n)
	cfg.CheckpointInterval = interval
	for i := 0; i < n; i++ {
		d := newFakeDriver()
		p := &cpProto{}
		rep := NewReplica(types.NodeID(i), cfg, d, p, kvstore.New(), c.auth, Hooks{})
		rep.Start()
		c.reps = append(c.reps, rep)
		c.protos = append(c.protos, p)
		c.drivers = append(c.drivers, d)
	}
	return c
}

// pump delivers every captured send to its destination until quiescent.
func (c *cpCluster) pump() {
	for {
		moved := false
		for i, d := range c.drivers {
			sent := d.sent
			d.sent = nil
			for _, s := range sent {
				if int(s.To) < len(c.reps) {
					c.reps[s.To].Deliver(types.NodeID(i), s.M)
					moved = true
				}
			}
		}
		if !moved {
			return
		}
	}
}

func (c *cpCluster) commitEverywhere(seq types.SeqNum) {
	b := types.NewBatch(req(uint64(seq), kvstore.Put(string(rune('a'+seq%20)), []byte{byte(seq)})))
	for _, r := range c.reps {
		r.Commit(0, seq, b, nil)
	}
}

func TestCheckpointStabilizesAndCollects(t *testing.T) {
	c := newCPCluster(t, 4, 5)
	for s := types.SeqNum(1); s <= 12; s++ {
		c.commitEverywhere(s)
	}
	c.pump()
	for i, r := range c.reps {
		if lw := r.Ledger().LowWater(); lw != 10 {
			t.Fatalf("replica %d low water %d, want 10", i, lw)
		}
		if c.protos[i].cm.StableCount < 2 {
			t.Fatalf("replica %d stabilized %d checkpoints", i, c.protos[i].cm.StableCount)
		}
	}
}

func TestCheckpointStateTransferForLaggard(t *testing.T) {
	c := newCPCluster(t, 4, 5)
	// Replicas 0..2 execute 10 slots; replica 3 sees nothing.
	b := make([]*types.Batch, 11)
	for s := types.SeqNum(1); s <= 10; s++ {
		b[s] = types.NewBatch(req(uint64(s), kvstore.Put(string(rune('a'+s)), []byte{byte(s)})))
		for i := 0; i < 3; i++ {
			c.reps[i].Commit(0, s, b[s], nil)
		}
	}
	// Deliver checkpoint traffic (including to the laggard).
	c.pump()
	if got := c.reps[3].Ledger().LastExecuted(); got < 10 {
		t.Fatalf("laggard reached seq %d, want 10 via state transfer", got)
	}
	if c.reps[3].App().Hash() != c.reps[0].App().Hash() {
		t.Fatal("laggard state diverges after transfer")
	}
}

func TestCheckpointRejectsForgedSnapshot(t *testing.T) {
	c := newCPCluster(t, 4, 5)
	// Give the laggard a certified expectation for seq 5 by letting it
	// watch the others' checkpoints.
	for s := types.SeqNum(1); s <= 5; s++ {
		bt := types.NewBatch(req(uint64(s), kvstore.Put("k", []byte{byte(s)})))
		for i := 0; i < 3; i++ {
			c.reps[i].Commit(0, s, bt, nil)
		}
	}
	c.pump()
	if c.reps[3].Ledger().LastExecuted() != 5 {
		t.Fatal("setup: laggard should have transferred to 5")
	}

	// Now a Byzantine peer offers a *forged* snapshot for a future seq
	// the quorum never certified: it must be ignored.
	bad := kvstore.New()
	bad.Apply(kvstore.Put("evil", []byte("state")))
	c.reps[3].Deliver(1, &StateMsg{
		Seq:       50,
		StateHash: bad.Hash(),
		Snapshot:  bad.Snapshot(),
	})
	if c.reps[3].Ledger().LastExecuted() != 5 {
		t.Fatal("forged snapshot fast-forwarded the replica")
	}
	if _, ok := c.reps[3].App().(*kvstore.Store).GetValue("evil"); ok {
		t.Fatal("forged state installed")
	}
}

func TestCheckpointIgnoresBadSignatures(t *testing.T) {
	c := newCPCluster(t, 4, 5)
	// A checkpoint message signed by the wrong key must not count
	// toward stabilization.
	forged := &CheckpointMsg{Seq: 5, StateHash: types.DigestBytes([]byte("x")), Replica: 2}
	forged.Sig = c.auth.Signer(1).Sign(forged.Digest()) // wrong signer
	for i := 0; i < 3; i++ {
		c.reps[3].Deliver(2, forged)
	}
	if c.reps[3].Ledger().LowWater() != 0 {
		t.Fatal("forged checkpoints stabilized")
	}
}
