package core

import (
	"errors"
	"testing"
	"testing/quick"

	"bftkit/internal/crypto"
)

// allProfiles returns every canonical profile in the repository.
func allProfiles() []Profile {
	return []Profile{
		PBFTProfile(), PBFTMACProfile(), HotStuffProfile(), HotStuff2Profile(),
		TendermintProfile(), SBFTProfile(), ZyzzyvaProfile(), Zyzzyva5Profile(),
		PoEProfile(), CheapBFTProfile(), FaBProfile(), QUProfile(),
		PrimeProfile(), ThemisProfile(), KauriProfile(), ChainProfile(),
		RaftLiteProfile(),
	}
}

func TestAllCanonicalProfilesValidate(t *testing.T) {
	for _, p := range allProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

// The tutorial's §2.3 names a concrete example protocol for each design
// choice. These tests pin the structural mapping: applying the choice to
// its input produces the example's design-space coordinates.

func TestDC1LinearizeMatchesSBFTStructure(t *testing.T) {
	out, err := Linearize(PBFTProfile())
	if err != nil {
		t.Fatal(err)
	}
	if out.MessageComplexity() != "O(n)" {
		t.Fatal("linearized protocol must be linear")
	}
	if out.Phases != 5 { // 1 + 2×2: each quadratic phase became two linear ones
		t.Fatalf("phases = %d, want 5", out.Phases)
	}
	if out.AuthOrdering != crypto.SchemeThreshold {
		t.Fatal("collectors require (threshold) signatures")
	}
	// The trade-off direction: fewer messages, more phases than PBFT.
	pbft := PBFTProfile()
	if out.GoodCaseMessages(16) >= pbft.GoodCaseMessages(16) {
		t.Fatal("linearization must reduce good-case messages at n=16")
	}
	if out.Phases <= pbft.Phases {
		t.Fatal("linearization must add phases")
	}
}

func TestDC1RequiresQuadraticPhase(t *testing.T) {
	if _, err := Linearize(HotStuffProfile()); !errors.Is(err, ErrNoCliquePhase) {
		t.Fatalf("linearizing an already-linear protocol: %v", err)
	}
}

func TestDC2PhaseReductionMatchesFaB(t *testing.T) {
	out, err := PhaseReduction(PBFTProfile())
	if err != nil {
		t.Fatal(err)
	}
	fab := FaBProfile()
	if out.Replicas != fab.Replicas || out.Quorum != fab.Quorum || out.Phases != fab.Phases {
		t.Fatalf("got n=%s q=%s phases=%d; FaB is n=%s q=%s phases=%d",
			out.Replicas, out.Quorum, out.Phases, fab.Replicas, fab.Quorum, fab.Phases)
	}
	if _, err := PhaseReduction(FaBProfile()); !errors.Is(err, ErrNotPBFTShape) {
		t.Fatal("phase reduction must require the PBFT shape")
	}
}

func TestDC3LeaderRotationMatchesHotStuff(t *testing.T) {
	lin, err := Linearize(PBFTProfile())
	if err != nil {
		t.Fatal(err)
	}
	out, err := LeaderRotation(lin)
	if err != nil {
		t.Fatal(err)
	}
	hs := HotStuffProfile()
	if out.Leader != RotatingLeader || out.HasViewChange {
		t.Fatal("rotation must fold the view-change stage into ordering")
	}
	if out.Phases != hs.Phases {
		t.Fatalf("phases = %d, HotStuff has %d", out.Phases, hs.Phases)
	}
	if out.Topology != Star {
		t.Fatal("linearized rotation stays linear")
	}
	if _, err := LeaderRotation(out); !errors.Is(err, ErrAlreadyRotating) {
		t.Fatal("double rotation must fail")
	}
}

func TestDC4NonResponsiveRotationMatchesTendermint(t *testing.T) {
	out, err := NonResponsiveRotation(PBFTProfile())
	if err != nil {
		t.Fatal(err)
	}
	tm := TendermintProfile()
	if out.Leader != RotatingLeader || out.Responsive {
		t.Fatal("DC4 must rotate and sacrifice responsiveness")
	}
	if out.Phases != tm.Phases {
		t.Fatalf("phases = %d; Tendermint has %d (no phases added)", out.Phases, tm.Phases)
	}
	if !out.HasTimer(TimerViewSync) {
		t.Fatal("the Δ wait is timer τ5")
	}
	if !out.HasAssumption(AssumeSynchrony) {
		t.Fatal("waiting Δ assumes synchrony (a6)")
	}
}

func TestDC5ReplicaReductionMatchesCheapBFT(t *testing.T) {
	out, err := OptimisticReplicaReduction(PBFTProfile())
	if err != nil {
		t.Fatal(err)
	}
	cb := CheapBFTProfile()
	if out.ActiveReplicas != cb.ActiveReplicas {
		t.Fatalf("active = %s, CheapBFT uses %s", out.ActiveReplicas, cb.ActiveReplicas)
	}
	if out.Replicas != Term(3, 1) {
		t.Fatal("n stays 3f+1 under DC5")
	}
	if !out.HasAssumption(AssumeHonestBackups) {
		t.Fatal("DC5 rests on assumption a2")
	}
}

func TestDC6OptimisticPhaseReductionMatchesSBFT(t *testing.T) {
	lin, _ := Linearize(PBFTProfile())
	out, err := OptimisticPhaseReduction(lin)
	if err != nil {
		t.Fatal(err)
	}
	sbft := SBFTProfile()
	if out.Phases != sbft.Phases || out.FastQuorum != sbft.FastQuorum {
		t.Fatalf("phases=%d fast=%s; SBFT has phases=%d fast=%s",
			out.Phases, out.FastQuorum, sbft.Phases, sbft.FastQuorum)
	}
	if out.Responsive {
		t.Fatal("waiting for all replicas sacrifices responsiveness")
	}
	if !out.HasTimer(TimerBackupFault) {
		t.Fatal("the fallback trigger is timer τ3")
	}
	if _, err := OptimisticPhaseReduction(PBFTProfile()); !errors.Is(err, ErrNotLinear) {
		t.Fatal("DC6 requires a linear input")
	}
}

func TestDC7SpeculativePhaseReductionMatchesPoE(t *testing.T) {
	lin, _ := Linearize(PBFTProfile())
	out, err := SpeculativePhaseReduction(lin)
	if err != nil {
		t.Fatal(err)
	}
	poe := PoEProfile()
	if !out.Speculative || out.FastQuorum != poe.FastQuorum || out.RepliesNeeded != poe.RepliesNeeded {
		t.Fatalf("spec=%v fast=%s replies=%s; PoE has fast=%s replies=%s",
			out.Speculative, out.FastQuorum, out.RepliesNeeded, poe.FastQuorum, poe.RepliesNeeded)
	}
}

func TestDC8SpeculativeExecutionMatchesZyzzyva(t *testing.T) {
	out, err := SpeculativeExecution(PBFTProfile())
	if err != nil {
		t.Fatal(err)
	}
	z := ZyzzyvaProfile()
	if out.Phases != z.Phases || out.RepliesNeeded != z.RepliesNeeded || !out.Speculative {
		t.Fatalf("phases=%d replies=%s spec=%v; Zyzzyva has phases=%d replies=%s",
			out.Phases, out.RepliesNeeded, out.Speculative, z.Phases, z.RepliesNeeded)
	}
	if out.ClientRoles&RoleRepairer == 0 {
		t.Fatal("the Zyzzyva client is a repairer (P6)")
	}
	if !out.HasTimer(TimerReply) {
		t.Fatal("the client fallback is timer τ1")
	}
}

func TestDC9ConflictFreeMatchesQU(t *testing.T) {
	out, err := OptimisticConflictFree(PBFTProfile())
	if err != nil {
		t.Fatal(err)
	}
	if out.Phases != 1 || out.ClientRoles&RoleProposer == 0 {
		t.Fatal("DC9 drops ordering and makes the client the proposer")
	}
	if !out.HasAssumption(AssumeConflictFree) {
		t.Fatal("DC9 rests on assumption a4")
	}
}

func TestDC10ResilienceMatchesZyzzyva5(t *testing.T) {
	out, err := Resilience(ZyzzyvaProfile())
	if err != nil {
		t.Fatal(err)
	}
	z5 := Zyzzyva5Profile()
	if out.Replicas != z5.Replicas || out.RepliesNeeded != z5.RepliesNeeded {
		t.Fatalf("n=%s replies=%s; Zyzzyva5 has n=%s replies=%s",
			out.Replicas, out.RepliesNeeded, z5.Replicas, z5.RepliesNeeded)
	}
}

func TestDC11AuthenticationUpgrade(t *testing.T) {
	out, err := Authentication(PBFTMACProfile())
	if err != nil {
		t.Fatal(err)
	}
	if out.AuthOrdering == crypto.SchemeMAC {
		t.Fatal("DC11 must replace MACs")
	}
	if _, err := Authentication(PBFTProfile()); !errors.Is(err, ErrNotMAC) {
		t.Fatal("DC11 needs a MAC stage to upgrade")
	}
}

func TestDC12RobustMatchesPrime(t *testing.T) {
	out, err := Robustify(PBFTProfile())
	if err != nil {
		t.Fatal(err)
	}
	pr := PrimeProfile()
	if out.Strategy != Robust || out.Phases != pr.Phases {
		t.Fatalf("strategy=%v phases=%d; Prime has phases=%d", out.Strategy, out.Phases, pr.Phases)
	}
	if out.Fairness != FairnessPartial {
		t.Fatal("the robust function provides partial fairness")
	}
	if _, err := Robustify(out); !errors.Is(err, ErrAlreadyRobust) {
		t.Fatal("robustifying twice must fail")
	}
}

func TestDC13FairMatchesThemis(t *testing.T) {
	out, err := Fairify(1.0)(PBFTProfile())
	if err != nil {
		t.Fatal(err)
	}
	th := ThemisProfile()
	if out.Fairness != FairnessGamma || out.Replicas != th.Replicas || out.Phases != th.Phases {
		t.Fatalf("fair=%v n=%s phases=%d; Themis has n=%s phases=%d",
			out.Fairness, out.Replicas, out.Phases, th.Replicas, th.Phases)
	}
	if !out.HasTimer(TimerRound) {
		t.Fatal("the preordering round closes on timer τ6")
	}
	// γ ≤ 0.5 is outside the definition.
	if _, err := Fairify(0.5)(PBFTProfile()); err == nil {
		t.Fatal("γ=0.5 must be rejected")
	}
}

func TestDC14TreeMatchesKauri(t *testing.T) {
	lin, _ := Linearize(PBFTProfile())
	rot, _ := LeaderRotation(lin)
	out, err := TreeLoadBalance(rot)
	if err != nil {
		t.Fatal(err)
	}
	ka := KauriProfile()
	if out.Topology != Tree || out.LoadBalancing != LBTree {
		t.Fatal("DC14 must organize replicas in a tree")
	}
	if !out.HasAssumption(AssumeHonestInterior) {
		t.Fatal("DC14 rests on assumption a3")
	}
	if out.Phases != ka.Phases {
		t.Fatalf("phases=%d; Kauri has %d", out.Phases, ka.Phases)
	}
	if _, err := TreeLoadBalance(PBFTProfile()); !errors.Is(err, ErrNotLinear) {
		t.Fatal("DC14 requires a linear input")
	}
}

func TestChoicesAlwaysProduceValidPoints(t *testing.T) {
	// §2.3: each design choice maps valid points to valid points. Apply
	// random sequences of choices to PBFT; whenever a choice succeeds,
	// its output must validate.
	f := func(seq []uint8) bool {
		p := PBFTProfile()
		for _, raw := range seq {
			c := Choices[int(raw)%len(Choices)]
			out, err := c.Apply(p)
			if err != nil {
				continue // precondition unmet: fine, skip
			}
			if out.Validate() != nil {
				return false
			}
			p = out
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestChoiceRegistryComplete(t *testing.T) {
	if len(Choices) != 14 {
		t.Fatalf("the paper defines 14 design choices; registry has %d", len(Choices))
	}
	seen := map[int]bool{}
	for _, c := range Choices {
		if c.ID < 1 || c.ID > 14 || seen[c.ID] {
			t.Fatalf("bad or duplicate choice ID %d", c.ID)
		}
		seen[c.ID] = true
		if _, ok := ChoiceByName(c.Name); !ok {
			t.Fatalf("choice %q not findable by name", c.Name)
		}
	}
	if _, ok := ChoiceByName("nonsense"); ok {
		t.Fatal("unknown name resolved")
	}
}

func TestGoodCaseMessageModel(t *testing.T) {
	pbft := PBFTProfile()
	// n=4: star pre-prepare (3) + two clique phases (12 each) = 27.
	if got := pbft.GoodCaseMessages(4); got != 27 {
		t.Fatalf("PBFT n=4: %d messages, want 27", got)
	}
	hs := HotStuffProfile()
	if got := hs.GoodCaseMessages(4); got != 21 { // 7 linear phases × 3
		t.Fatalf("HotStuff n=4: %d, want 21", got)
	}
	if pbft.MessageComplexity() != "O(n^2)" || hs.MessageComplexity() != "O(n)" {
		t.Fatal("complexity labels wrong")
	}
}

func TestValidateCatchesBrokenProfiles(t *testing.T) {
	p := PBFTProfile()
	p.Replicas = Term(2, 1) // below 3f+1
	if err := p.Validate(); !errors.Is(err, ErrTooFewReplicas) {
		t.Fatalf("2f+1 BFT accepted: %v", err)
	}
	p = PBFTProfile()
	p.Quorum = Term(1, 1) // quorums no longer intersect in honest replicas
	if err := p.Validate(); !errors.Is(err, ErrQuorumIntersection) {
		t.Fatalf("broken quorum accepted: %v", err)
	}
	p = FaBProfile()
	p.Replicas = Term(4, 1) // two-phase below the 5f−1 bound
	if err := p.Validate(); !errors.Is(err, ErrTwoPhaseBound) {
		t.Fatalf("5f−1 lower bound not enforced: %v", err)
	}
	p = HotStuffProfile()
	p.HasViewChange = true
	if err := p.Validate(); !errors.Is(err, ErrRotatingViewChange) {
		t.Fatalf("rotating+view-change accepted: %v", err)
	}
	p = ThemisProfile()
	p.Gamma = 0.51
	if err := p.Validate(); !errors.Is(err, ErrGammaReplicas) {
		t.Fatalf("γ-replica bound not enforced: %v", err)
	}
}

func TestTermString(t *testing.T) {
	cases := map[LinearTerm]string{
		Term(3, 1):  "3f+1",
		Term(5, -1): "5f-1",
		Term(2, 0):  "2f",
		Term(0, 4):  "4",
	}
	for term, want := range cases {
		if got := term.String(); got != want {
			t.Fatalf("%v renders %q, want %q", term, got, want)
		}
	}
}
