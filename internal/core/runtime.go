package core

import (
	"fmt"
	"math/rand"
	"time"

	"bftkit/internal/crypto"
	"bftkit/internal/ledger"
	"bftkit/internal/obsv"
	"bftkit/internal/types"
)

// Driver abstracts the substrate a replica runs on: the deterministic
// simulator (internal/sim) or the TCP transport (internal/transport).
// Drivers guarantee that all callbacks into one replica are serialized.
type Driver interface {
	Now() time.Duration
	After(d time.Duration, fn func()) (cancel func())
	Send(from, to types.NodeID, m types.Message)
	Rand() *rand.Rand
}

// Hooks are the harness's observation points. All fields are optional.
type Hooks struct {
	// OnCommit fires when a replica durably commits a slot.
	OnCommit func(id types.NodeID, view types.View, seq types.SeqNum, b *types.Batch, proof *types.CommitProof, at time.Duration)
	// OnExecute fires when a replica executes a slot (committed order).
	OnExecute func(id types.NodeID, seq types.SeqNum, b *types.Batch, results [][]byte, at time.Duration)
	// OnViewChange fires when a replica enters a new view.
	OnViewChange func(id types.NodeID, v types.View, at time.Duration)
	// OnViolation fires on a detected safety violation (conflicting
	// commits); tests fail the run when it fires.
	OnViolation func(id types.NodeID, err error)
	// Logf receives replica trace output.
	Logf func(format string, args ...any)
	// Trace, when non-nil, receives commit/execute/view-change/timer
	// events (message traffic is reported by the substrate, crypto ops by
	// the authority). All Tracer methods are nil-receiver safe, so leaving
	// this unset costs one predictable branch per event.
	Trace *obsv.Tracer
}

// specEntry records one speculatively executed slot so it can later be
// promoted (on commit) or undone (on rollback).
type specEntry struct {
	seq         types.SeqNum
	digest      types.Digest
	results     [][]byte
	opCount     int
	depthBefore int
	histBefore  types.Digest
	newKeys     []types.RequestKey
}

// DuplicateResult is returned for a request that re-appears in a later
// committed batch (e.g. re-proposed across a view change after its first
// commit). The skip decision depends only on the executed prefix, so it
// is deterministic across replicas.
var DuplicateResult = []byte("duplicate")

// Replica is the runtime adapting one Protocol to a Driver. It implements
// Env and the simulator's Handler interface, owns the ledger, the
// application, and the replica's timers, and enforces in-order execution
// of committed slots (Figure 1's execution stage).
type Replica struct {
	id       types.NodeID
	cfg      Config
	driver   Driver
	proto    Protocol
	app      Application
	led      *ledger.Ledger
	signer   *crypto.Signer
	verifier *crypto.Verifier
	hooks    Hooks

	timers    map[TimerID]func()
	spec      []specEntry
	history   types.Digest
	executed  map[types.RequestKey]bool
	lastReply map[types.NodeID]*types.Reply
	stopped   bool
}

// NewReplica wires a protocol instance to its substrate. Call Start to
// run Protocol.Init.
func NewReplica(id types.NodeID, cfg Config, driver Driver, proto Protocol,
	app Application, auth *crypto.Authority, hooks Hooks) *Replica {
	return &Replica{
		id:        id,
		cfg:       cfg,
		driver:    driver,
		proto:     proto,
		app:       app,
		led:       ledger.New(),
		signer:    auth.Signer(id),
		verifier:  auth.VerifierFor(id),
		hooks:     hooks,
		timers:    make(map[TimerID]func()),
		executed:  make(map[types.RequestKey]bool),
		lastReply: make(map[types.NodeID]*types.Reply),
	}
}

// Start initializes the protocol. Separate from construction so the
// harness can install all replicas before any timer is armed.
func (r *Replica) Start() { r.proto.Init(r) }

// Stop cancels all timers and ignores further events (crash).
func (r *Replica) Stop() {
	r.stopped = true
	for id, cancel := range r.timers {
		cancel()
		delete(r.timers, id)
	}
}

// Stopped reports whether the replica has been stopped.
func (r *Replica) Stopped() bool { return r.stopped }

// Protocol returns the protocol instance (tests reach into it).
func (r *Replica) Protocol() Protocol { return r.proto }

// Deliver implements the driver-facing receive path.
func (r *Replica) Deliver(from types.NodeID, m types.Message) {
	if r.stopped {
		return
	}
	switch mm := m.(type) {
	case *RequestMsg:
		// At-most-once retransmission handling for every protocol: if
		// this replica already replied to exactly this request, resend
		// the cached signed reply. A client whose f+1 matching replies
		// were all lost (a partition or crash window) retransmits, and
		// protocols drop already-executed requests from admission — so
		// without the resend the client would starve forever on a
		// request the cluster long since committed.
		if last := r.lastReply[mm.Req.Client]; last != nil && last.ClientSeq == mm.Req.ClientSeq {
			r.Send(last.Client, &ReplyMsg{R: last})
			return
		}
		r.proto.OnRequest(mm.Req)
	default:
		r.proto.OnMessage(from, m)
	}
}

// --- Env implementation ---

// ID implements Env.
func (r *Replica) ID() types.NodeID { return r.id }

// N implements Env.
func (r *Replica) N() int { return r.cfg.N }

// F implements Env.
func (r *Replica) F() int { return r.cfg.F }

// Config implements Env.
func (r *Replica) Config() Config { return r.cfg }

// Replicas implements Env.
func (r *Replica) Replicas() []types.NodeID { return r.cfg.AllReplicas() }

// Send implements Env.
func (r *Replica) Send(to types.NodeID, m types.Message) {
	if r.stopped {
		return
	}
	r.driver.Send(r.id, to, m)
}

// Broadcast implements Env: send to every replica except self.
func (r *Replica) Broadcast(m types.Message) {
	for i := 0; i < r.cfg.N; i++ {
		if types.NodeID(i) != r.id {
			r.Send(types.NodeID(i), m)
		}
	}
}

// SetTimer implements Env. Re-arming an existing ID resets it.
func (r *Replica) SetTimer(id TimerID, d time.Duration) {
	if r.stopped {
		return
	}
	if cancel, ok := r.timers[id]; ok {
		cancel()
	}
	r.timers[id] = r.driver.After(d, func() {
		if r.stopped {
			return
		}
		delete(r.timers, id)
		r.hooks.Trace.TimerFired(r.Now(), r.id, id.Name, id.View, id.Seq)
		r.proto.OnTimer(id)
	})
}

// StopTimer implements Env.
func (r *Replica) StopTimer(id TimerID) {
	if cancel, ok := r.timers[id]; ok {
		cancel()
		delete(r.timers, id)
	}
}

// Now implements Env.
func (r *Replica) Now() time.Duration { return r.driver.Now() }

// Rand implements Env.
func (r *Replica) Rand() *rand.Rand { return r.driver.Rand() }

// Signer implements Env.
func (r *Replica) Signer() *crypto.Signer { return r.signer }

// Verifier implements Env.
func (r *Replica) Verifier() *crypto.Verifier { return r.verifier }

// Scheme implements Env.
func (r *Replica) Scheme() crypto.Scheme { return r.cfg.Scheme }

// Ledger implements Env.
func (r *Replica) Ledger() *ledger.Ledger { return r.led }

// App implements Env.
func (r *Replica) App() Application { return r.app }

// Commit implements Env: record the decided slot and execute any newly
// contiguous prefix.
func (r *Replica) Commit(view types.View, seq types.SeqNum, b *types.Batch, proof *types.CommitProof) {
	if proof != nil {
		proof.NormalizeVoters()
	}
	fresh, err := r.led.Commit(&ledger.Entry{Seq: seq, View: view, Batch: b, Proof: proof})
	if err != nil {
		r.violation(err)
		return
	}
	if fresh {
		r.hooks.Trace.Commit(r.Now(), r.id, view, seq)
		if r.hooks.OnCommit != nil {
			r.hooks.OnCommit(r.id, view, seq, b, proof, r.Now())
		}
	}
	r.executeReady()
}

func (r *Replica) violation(err error) {
	r.Logf("SAFETY VIOLATION: %v", err)
	if r.hooks.OnViolation != nil {
		r.hooks.OnViolation(r.id, err)
	}
}

// executeReady applies committed slots in order, resolving speculative
// executions: a matching speculative slot is promoted (its results kept),
// a mismatched one is rolled back and re-executed from the decided batch.
func (r *Replica) executeReady() {
	for {
		e := r.led.NextExecutable()
		if e == nil {
			return
		}
		results := r.resolveCommitted(e)
		if err := r.led.MarkExecuted(e.Seq); err != nil {
			r.violation(err)
			return
		}
		r.hooks.Trace.Execute(r.Now(), r.id, e.Seq)
		if r.hooks.OnExecute != nil {
			r.hooks.OnExecute(r.id, e.Seq, e.Batch, results, r.Now())
		}
		r.proto.OnExecuted(e.Seq, e.Batch, results)
	}
}

func (r *Replica) resolveCommitted(e *ledger.Entry) [][]byte {
	digest := e.Batch.Digest()
	if len(r.spec) > 0 && r.spec[0].seq == e.Seq {
		head := r.spec[0]
		if head.digest == digest {
			// Speculation was right: keep effects, drop undo records.
			r.app.Promote(head.opCount)
			r.spec = r.spec[1:]
			return head.results
		}
		// Speculation diverged from the decided order: undo this slot
		// and everything after it, then execute the decided batch.
		r.rollbackSpecFrom(0)
	} else if len(r.spec) > 0 && r.spec[0].seq < e.Seq {
		// A speculative slot was skipped by the decided order.
		r.rollbackSpecFrom(0)
	}
	return r.applyBatch(e.Batch)
}

func (r *Replica) applyBatch(b *types.Batch) [][]byte {
	results := make([][]byte, b.Len())
	for i, req := range b.Requests {
		key := req.Key()
		if r.executed[key] {
			results[i] = DuplicateResult
			continue
		}
		r.executed[key] = true
		results[i] = r.app.Apply(req.Op)
	}
	r.history = chainHistory(r.history, b.Digest())
	return results
}

func chainHistory(prev, batch types.Digest) types.Digest {
	var h types.Hasher
	h.Digest(prev).Digest(batch)
	return h.Sum()
}

// SpecExecute implements Env (DC7/DC8 speculative execution).
func (r *Replica) SpecExecute(seq types.SeqNum, b *types.Batch) [][]byte {
	if seq <= r.led.LastExecuted() {
		return nil // already executed through commit path
	}
	if len(r.spec) > 0 && seq <= r.spec[len(r.spec)-1].seq {
		return nil // already speculated
	}
	entry := specEntry{
		seq:         seq,
		digest:      b.Digest(),
		depthBefore: r.app.SpecDepth(),
		histBefore:  r.history,
	}
	results := make([][]byte, b.Len())
	for i, req := range b.Requests {
		key := req.Key()
		if r.executed[key] {
			results[i] = DuplicateResult
			continue
		}
		r.executed[key] = true
		entry.newKeys = append(entry.newKeys, key)
		res, _ := r.app.SpecApply(req.Op)
		results[i] = res
		entry.opCount++
	}
	entry.results = results
	r.history = chainHistory(r.history, entry.digest)
	r.spec = append(r.spec, entry)
	return results
}

// RollbackSpecAbove implements Env.
func (r *Replica) RollbackSpecAbove(seq types.SeqNum) {
	for i, se := range r.spec {
		if se.seq > seq {
			r.rollbackSpecFrom(i)
			return
		}
	}
}

// rollbackSpecFrom undoes spec entries i.. (oldest of the suffix first in
// bookkeeping; the store unwinds newest-first internally).
func (r *Replica) rollbackSpecFrom(i int) {
	if i >= len(r.spec) {
		return
	}
	first := r.spec[i]
	for _, se := range r.spec[i:] {
		for _, k := range se.newKeys {
			delete(r.executed, k)
		}
	}
	r.app.Rollback(first.depthBefore)
	r.history = first.histBefore
	r.spec = r.spec[:i]
}

// SpecTip returns the highest speculatively executed sequence number
// (ledger.LastExecuted if none).
func (r *Replica) SpecTip() types.SeqNum {
	if len(r.spec) > 0 {
		return r.spec[len(r.spec)-1].seq
	}
	return r.led.LastExecuted()
}

// HistoryDigest implements Env.
func (r *Replica) HistoryDigest() types.Digest { return r.history }

// Reply implements Env: sign and deliver a reply to its client.
func (r *Replica) Reply(rp *types.Reply) {
	rp.Replica = r.id
	rp.Sig = r.signer.Sign(rp.Digest())
	// Cache only replies whose slot is committed-executed. Speculative
	// replies (DC7/DC8 fast paths) may be rolled back, and serving one
	// from the cache would both resend a retracted result and hide the
	// retransmission from the protocol's re-ordering path.
	if rp.Seq <= r.led.LastExecuted() {
		cp := *rp
		r.lastReply[rp.Client] = &cp
	}
	r.Send(rp.Client, &ReplyMsg{R: rp})
}

// ViewChanged implements Env.
func (r *Replica) ViewChanged(v types.View) {
	r.hooks.Trace.ViewChange(r.Now(), r.id, v)
	if r.hooks.OnViewChange != nil {
		r.hooks.OnViewChange(r.id, v, r.Now())
	}
}

// Logf implements Env.
func (r *Replica) Logf(format string, args ...any) {
	if r.hooks.Logf != nil {
		r.hooks.Logf(fmt.Sprintf("t=%-12v %v: ", r.Now(), r.id)+format, args...)
	}
}
