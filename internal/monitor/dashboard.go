package monitor

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// ANSI fragments for the watch dashboard. Renderers take color=false
// for logs, CI and -once output.
const (
	ansiClear  = "\x1b[2J\x1b[H"
	ansiRed    = "\x1b[31m"
	ansiYellow = "\x1b[33m"
	ansiGreen  = "\x1b[32m"
	ansiDim    = "\x1b[2m"
	ansiBold   = "\x1b[1m"
	ansiReset  = "\x1b[0m"
)

func paint(color bool, code, s string) string {
	if !color {
		return s
	}
	return code + s + ansiReset
}

// RenderDashboard writes the live cluster view: one row per node, the
// cluster aggregate line, and the firing alerts. With color it is the
// auto-refreshing bftmon -watch screen; without, a plain text snapshot.
func RenderDashboard(w io.Writer, sig *ClusterSignals, firing []Alert, color bool) {
	if sig == nil {
		fmt.Fprintln(w, "bftmon: no scrape completed yet")
		return
	}
	fmt.Fprintf(w, "%s  %s\n",
		paint(color, ansiBold, "bftmon cluster view"),
		paint(color, ansiDim, sig.At.Format(time.TimeOnly)))
	fmt.Fprintf(w, "nodes %d/%d reachable   commit seq %d   throughput %.1f slots/s   p50 %s   p99 %s\n\n",
		sig.Reachable, sig.Total, int64(sig.ClusterCommitSeq), sig.ClusterCommitRate,
		fmtMicros(sig.LatencyP50us), fmtMicros(sig.LatencyP99us))

	fmt.Fprintf(w, "%-10s %-12s %9s %9s %7s %7s %8s %8s %6s\n",
		"NODE", "STATUS", "SEQ", "SLOTS/S", "LAG", "VC/S", "LINKF/S", "VFYQ", "SUSP")
	for _, n := range sig.Nodes {
		status := paint(color, ansiGreen, "up")
		switch {
		case n.Unreachable:
			status = paint(color, ansiRed, "unreachable")
		case !n.Up:
			status = paint(color, ansiYellow, fmt.Sprintf("flaky(%d)", int(n.Failures)))
		}
		fmt.Fprintf(w, "%-10s %-12s %9d %9.1f %7d %7.1f %8.2f %8.1f %6.2f\n",
			n.Name, status, int64(n.CommitSeq), n.CommitRate, int64(n.SlotLag),
			n.ViewChangeRate, n.LinkFaultRate, n.VerifyQueueAvg, n.Suspicion)
	}

	fmt.Fprintln(w)
	if len(firing) == 0 {
		fmt.Fprintln(w, paint(color, ansiGreen, "no alerts firing"))
		return
	}
	fmt.Fprintln(w, paint(color, ansiBold, "FIRING ALERTS"))
	sorted := append([]Alert(nil), firing...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Rule != sorted[j].Rule {
			return sorted[i].Rule < sorted[j].Rule
		}
		return sorted[i].Scope < sorted[j].Scope
	})
	for _, a := range sorted {
		code := ansiYellow
		if a.Severity == "critical" {
			code = ansiRed
		}
		line := fmt.Sprintf("  %-20s %-10s value=%-8g since=%s", a.Rule, a.Scope, a.Value, a.Since.Format(time.TimeOnly))
		fmt.Fprintln(w, paint(color, code, line))
		if a.Help != "" {
			fmt.Fprintln(w, paint(color, ansiDim, "      "+a.Help))
		}
	}
}

// fmtMicros renders a microsecond quantity with a readable unit.
func fmtMicros(us float64) string {
	switch {
	case us <= 0:
		return "-"
	case us < 1000:
		return fmt.Sprintf("%.0fµs", us)
	case us < 1e6:
		return fmt.Sprintf("%.1fms", us/1000)
	default:
		return fmt.Sprintf("%.2fs", us/1e6)
	}
}

// RenderAlertLog writes the transition log, one line per event — the
// plain append-only view for files and CI output.
func RenderAlertLog(w io.Writer, alerts []Alert) {
	for _, a := range alerts {
		fmt.Fprintf(w, "%s %s\n", a.At.Format(time.RFC3339), a.String())
	}
}

// WatchFrame composes one -watch refresh: clear screen, dashboard.
func WatchFrame(sig *ClusterSignals, firing []Alert) string {
	var b strings.Builder
	b.WriteString(ansiClear)
	RenderDashboard(&b, sig, firing, true)
	return b.String()
}
