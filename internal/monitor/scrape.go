package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"bftkit/internal/forensics"
	"bftkit/internal/obsv"
	"bftkit/internal/ops"
)

// Target is one node's ops surface: BaseURL is the host:port (or full
// http URL) that serves /metrics, /healthz and /forensics.
type Target struct {
	Name    string `json:"name"`
	BaseURL string `json:"base_url"`
}

// Sample is one scrape of one target. A failed scrape carries only Err;
// a successful one always has Families and Health, and Forensics when
// the node has the auditor attached (404 is not an error — forensics is
// opt-in per node).
type Sample struct {
	At       time.Time
	Families []*obsv.PromFamily
	Health   *ops.Health
	Report   *forensics.Report
	Err      error
}

// Scraper pulls one target's surface over HTTP with a bounded timeout,
// so one hung node cannot stall the whole scrape round.
type Scraper struct {
	Client *http.Client
}

func NewScraper(timeout time.Duration) *Scraper {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	return &Scraper{Client: &http.Client{Timeout: timeout}}
}

func (s *Scraper) url(t Target, path string) string {
	base := t.BaseURL
	if len(base) < 7 || (base[:7] != "http://" && (len(base) < 8 || base[:8] != "https://")) {
		base = "http://" + base
	}
	for len(base) > 0 && base[len(base)-1] == '/' {
		base = base[:len(base)-1]
	}
	return base + path
}

// Scrape pulls /metrics, /healthz and /forensics from one target. Any
// failure of the two mandatory endpoints fails the whole sample: a node
// that serves half its surface is not healthy, and partial samples
// would poison the rate derivations.
func (s *Scraper) Scrape(t Target, now time.Time) Sample {
	smp := Sample{At: now}

	resp, err := s.Client.Get(s.url(t, "/metrics"))
	if err != nil {
		smp.Err = fmt.Errorf("metrics: %w", err)
		return smp
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		smp.Err = fmt.Errorf("metrics: %s", resp.Status)
		return smp
	}
	fams, err := obsv.ParseProm(resp.Body)
	resp.Body.Close()
	if err != nil {
		smp.Err = fmt.Errorf("metrics: %w", err)
		return smp
	}
	smp.Families = fams

	resp, err = s.Client.Get(s.url(t, "/healthz"))
	if err != nil {
		smp.Err = fmt.Errorf("healthz: %w", err)
		return smp
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		smp.Err = fmt.Errorf("healthz: %s", resp.Status)
		return smp
	}
	var h ops.Health
	err = json.NewDecoder(resp.Body).Decode(&h)
	resp.Body.Close()
	if err != nil {
		smp.Err = fmt.Errorf("healthz: %w", err)
		return smp
	}
	smp.Health = &h

	resp, err = s.Client.Get(s.url(t, "/forensics"))
	if err == nil {
		switch resp.StatusCode {
		case http.StatusOK:
			var rep forensics.Report
			if jerr := json.NewDecoder(resp.Body).Decode(&rep); jerr == nil {
				smp.Report = &rep
			}
		case http.StatusNotFound:
			// auditor not attached on this node — fine
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	return smp
}
