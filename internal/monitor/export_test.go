package monitor

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"bftkit/internal/obsv"
	"bftkit/internal/types"
)

func TestClusterPromReexportParses(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, 0, 2), newFakeNode(t, 1, 2)}
	m := newTestMonitor(t, 2, nodes...)
	for tick := 0; tick < 4; tick++ {
		for _, fn := range nodes {
			fn.commitSlots(3)
		}
		m.Tick(ts(tick))
	}

	var b strings.Builder
	if err := m.WriteClusterProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// The aggregated document must itself survive the strict parser —
	// bftmon's re-export is a scrape target too.
	fams, err := obsv.ParseProm(strings.NewReader(out))
	if err != nil {
		t.Fatalf("re-export does not parse: %v\n%s", err, out)
	}
	byName := make(map[string]*obsv.PromFamily)
	for _, f := range fams {
		byName[f.Name] = f
	}
	up := byName["bftmon_up"]
	if up == nil || len(up.Samples) != 2 {
		t.Fatalf("bftmon_up = %+v", up)
	}
	for _, s := range up.Samples {
		if s.Value != 1 {
			t.Fatalf("bftmon_up sample = %+v, want 1", s)
		}
	}
	// Raw series come back instance-labelled so per-node identity
	// survives aggregation.
	sent := byName["bftkit_phase_msgs_sent_total"]
	if sent == nil {
		t.Fatal("re-export lost the phase counter family")
	}
	seen := map[string]bool{}
	for _, s := range sent.Samples {
		seen[s.Labels["instance"]] = true
	}
	if !seen["r0"] || !seen["r1"] {
		t.Fatalf("instances = %v, want r0 and r1", seen)
	}
}

func TestMonitorHandlerEndpoints(t *testing.T) {
	fn := newFakeNode(t, types.NodeID(0), 1)
	m := newTestMonitor(t, 2, fn)
	fn.commitSlots(2)
	m.Tick(ts(0))
	srv := httptest.NewServer(m.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	fams, perr := obsv.ParseProm(resp.Body)
	resp.Body.Close()
	if perr != nil {
		t.Fatalf("/metrics does not parse: %v", perr)
	}
	if len(fams) == 0 {
		t.Fatal("/metrics empty")
	}

	resp, err = http.Get(srv.URL + "/api/signals")
	if err != nil {
		t.Fatal(err)
	}
	var sig ClusterSignals
	if err := json.NewDecoder(resp.Body).Decode(&sig); err != nil {
		t.Fatalf("/api/signals not JSON: %v", err)
	}
	resp.Body.Close()
	if sig.Total != 1 || len(sig.Nodes) != 1 || sig.Nodes[0].Name != "r0" {
		t.Fatalf("signals = %+v", sig)
	}

	resp, err = http.Get(srv.URL + "/api/alerts")
	if err != nil {
		t.Fatal(err)
	}
	var alerts struct {
		Firing []Alert `json:"firing"`
		Log    []Alert `json:"log"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&alerts); err != nil {
		t.Fatalf("/api/alerts not JSON: %v", err)
	}
	resp.Body.Close()
	if len(alerts.Firing) != 0 {
		t.Fatalf("clean cluster firing = %+v", alerts.Firing)
	}

	resp, err = http.Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	raw := make([]byte, 1<<16)
	n, _ := resp.Body.Read(raw)
	resp.Body.Close()
	if !strings.Contains(string(raw[:n]), "bftmon cluster view") {
		t.Fatalf("dashboard page = %q", string(raw[:n]))
	}
}
