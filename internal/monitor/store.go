// Package monitor is the cluster observability plane: a pull-based
// scraper over every node's ops surface (/metrics, /healthz,
// /forensics), a bounded ring-buffer time-series store with rate and
// delta derivation, health signals computed per scrape (throughput,
// latency quantiles, stalls, view-change storms, stragglers, link
// faults, verify-pool saturation, forensics verdicts), and a
// deterministic alert-rule engine with threshold, hysteresis and
// for-duration semantics. cmd/bftmon is the CLI front end; the X19
// experiment measures its fault-detection latency on a live cluster.
package monitor

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Point is one observation of one series.
type Point struct {
	At time.Time
	V  float64
}

// Series is a bounded ring buffer of points, oldest first. Appending
// past the capacity drops the oldest point; derivations therefore see
// at most cap scrapes of history, which bounds memory for arbitrarily
// long watches.
type Series struct {
	pts  []Point
	head int // index of the oldest point
	n    int
}

// NewSeries returns a ring holding at most cap points (min 2 — a
// single point can derive nothing).
func NewSeries(cap int) *Series {
	if cap < 2 {
		cap = 2
	}
	return &Series{pts: make([]Point, cap)}
}

func (s *Series) Add(p Point) {
	if s.n < len(s.pts) {
		s.pts[(s.head+s.n)%len(s.pts)] = p
		s.n++
		return
	}
	s.pts[s.head] = p
	s.head = (s.head + 1) % len(s.pts)
}

func (s *Series) Len() int { return s.n }

// At returns the i-th point, 0 = oldest.
func (s *Series) At(i int) Point { return s.pts[(s.head+i)%len(s.pts)] }

// Last returns the newest point.
func (s *Series) Last() (Point, bool) {
	if s.n == 0 {
		return Point{}, false
	}
	return s.At(s.n - 1), true
}

// Delta is the counter increase over the last window intervals
// (clamped to available history). A decrease means the counter reset —
// the node restarted — so the post-reset value is the whole delta,
// never a negative rate.
func (s *Series) Delta(window int) float64 {
	last, from, ok := s.span(window)
	if !ok {
		return 0
	}
	d := last.V - from.V
	if d < 0 {
		return last.V
	}
	return d
}

// Rate is Delta divided by the span's elapsed seconds.
func (s *Series) Rate(window int) float64 {
	last, from, ok := s.span(window)
	if !ok {
		return 0
	}
	sec := last.At.Sub(from.At).Seconds()
	if sec <= 0 {
		return 0
	}
	return s.Delta(window) / sec
}

func (s *Series) span(window int) (last, from Point, ok bool) {
	if s.n < 2 {
		return Point{}, Point{}, false
	}
	if window < 1 {
		window = 1
	}
	i := s.n - 1 - window
	if i < 0 {
		i = 0
	}
	return s.At(s.n - 1), s.At(i), true
}

// Store holds every series scraped from one target, keyed by the
// Prometheus series identity (name plus sorted labels).
type Store struct {
	cap    int
	series map[string]*Series
}

func NewStore(cap int) *Store {
	return &Store{cap: cap, series: make(map[string]*Series)}
}

// Observe appends one point to the named series, creating it on first
// sight.
func (st *Store) Observe(key string, p Point) {
	s := st.series[key]
	if s == nil {
		s = NewSeries(st.cap)
		st.series[key] = s
	}
	s.Add(p)
}

// Get returns the named series, or nil.
func (st *Store) Get(key string) *Series { return st.series[key] }

// Keys returns every series key, sorted — the exporter's iteration
// order must be deterministic.
func (st *Store) Keys() []string {
	keys := make([]string, 0, len(st.series))
	for k := range st.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// SumDelta sums Delta(window) across every series whose key passes the
// filter — e.g. every bucket of one histogram, or one phase's counter
// across nodes.
func (st *Store) SumDelta(window int, match func(key string) bool) float64 {
	var sum float64
	for k, s := range st.series {
		if match(k) {
			sum += s.Delta(window)
		}
	}
	return sum
}

// LastValue returns the newest value of the named series, or def.
func (st *Store) LastValue(key string, def float64) float64 {
	if s := st.series[key]; s != nil {
		if p, ok := s.Last(); ok {
			return p.V
		}
	}
	return def
}

// hasPrefixAndLabel reports whether a series key is family{...label...}.
// Series keys are name|k=v|k=v (sorted), so a family prefix match is
// "name|" and label match is a "|k=v" segment.
func keyFamily(key string) string {
	if i := strings.IndexByte(key, '|'); i >= 0 {
		return key[:i]
	}
	return key
}

func keyHasLabel(key, label, value string) bool {
	return strings.Contains(key, "|"+label+"="+value+"|") ||
		strings.HasSuffix(key, "|"+label+"="+value)
}

func keyLabel(key, label string) (string, bool) {
	for _, seg := range strings.Split(key, "|")[1:] {
		if v, ok := strings.CutPrefix(seg, label+"="); ok {
			return v, true
		}
	}
	return "", false
}

// bucketUpper parses the le label of a histogram-bucket series key.
func bucketUpper(key string) (float64, bool) {
	v, ok := keyLabel(key, "le")
	if !ok {
		return 0, false
	}
	if v == "+Inf" {
		return math.Inf(1), true
	}
	f, err := strconv.ParseFloat(v, 64)
	if err != nil {
		return 0, false
	}
	return f, true
}
