package monitor

import (
	"sort"
	"time"

	"bftkit/internal/obsv"
)

// NodeSignals is the per-node health digest one tick computes.
type NodeSignals struct {
	Name string `json:"name"`
	// Up means the last scrape succeeded; Unreachable means the scrape
	// age exceeded two intervals (consecutive failures >= 2), the
	// staleness line past which the monitor stops trusting its cache.
	Up          bool    `json:"up"`
	Unreachable bool    `json:"unreachable"`
	Failures    float64 `json:"consecutive_failures"`

	CommitSeq      float64 `json:"commit_seq"`
	CommitRate     float64 `json:"commit_rate"`      // slots/s over the window
	SlotLag        float64 `json:"slot_lag"`         // max reachable seq − this seq
	ViewChangeRate float64 `json:"view_change_rate"` // view-change msgs sent /s
	LinkFaultRate  float64 `json:"link_fault_rate"`  // dial_fail+conn_drop+reconnect /s
	VerifyQueueAvg float64 `json:"verify_queue_avg"` // windowed mean verify-lane backlog
	ClientDemand   float64 `json:"client_demand"`    // client msgs delivered over the window
	Suspicion      float64 `json:"suspicion"`        // max forensics suspicion this node reports
	Proofs         float64 `json:"proofs"`           // misbehavior proofs this node's auditor holds
}

// ClusterSignals is one tick's cluster-wide digest: per-node rows plus
// the aggregates the cross-node alert rules fire on.
type ClusterSignals struct {
	At        time.Time     `json:"at"`
	Nodes     []NodeSignals `json:"nodes"`
	Reachable int           `json:"reachable"`
	Total     int           `json:"total"`

	ClusterCommitSeq  float64 `json:"cluster_commit_seq"`  // max reachable commit seq
	ClusterCommitRate float64 `json:"cluster_commit_rate"` // slots/s, cluster high-water mark
	LatencyP50us      float64 `json:"latency_p50_us"`      // windowed slot-latency quantiles,
	LatencyP99us      float64 `json:"latency_p99_us"`      // reconstructed from bucket deltas
	ProgressStall     float64 `json:"progress_stall"`      // 1 when demand flows but no slot commits
	PartitionNodes    float64 `json:"partition_nodes"`     // nodes with active link faults
	ForensicsProofs   float64 `json:"forensics_proofs"`    // max proofs any auditor holds
	MaxSuspicion      float64 `json:"max_suspicion"`
}

// Signal names the alert rules reference. Per-node signals evaluate
// once per node (scope = target name); cluster signals once (scope
// "cluster").
const (
	SigNodeDown       = "node_down"
	SigCommitRate     = "commit_rate"
	SigSlotLag        = "slot_lag"
	SigViewChangeRate = "view_change_rate"
	SigLinkFaultRate  = "link_fault_rate"
	SigVerifyQueueAvg = "verify_queue_avg"
	SigProgressStall  = "progress_stall"
	SigPartitionNodes = "partition_nodes"
	SigForensicsProof = "forensics_proofs"
	SigMaxSuspicion   = "max_suspicion"
)

// Values flattens the snapshot into signal → scope → value, the shape
// the alert engine evaluates.
func (cs *ClusterSignals) Values() map[string]map[string]float64 {
	v := map[string]map[string]float64{
		SigNodeDown:       {},
		SigCommitRate:     {},
		SigSlotLag:        {},
		SigViewChangeRate: {},
		SigLinkFaultRate:  {},
		SigVerifyQueueAvg: {},
		SigProgressStall:  {"cluster": cs.ProgressStall},
		SigPartitionNodes: {"cluster": cs.PartitionNodes},
		SigForensicsProof: {"cluster": cs.ForensicsProofs},
		SigMaxSuspicion:   {"cluster": cs.MaxSuspicion},
	}
	for _, n := range cs.Nodes {
		down := 0.0
		if n.Unreachable {
			down = 1
		}
		v[SigNodeDown][n.Name] = down
		v[SigCommitRate][n.Name] = n.CommitRate
		v[SigSlotLag][n.Name] = n.SlotLag
		v[SigViewChangeRate][n.Name] = n.ViewChangeRate
		v[SigLinkFaultRate][n.Name] = n.LinkFaultRate
		v[SigVerifyQueueAvg][n.Name] = n.VerifyQueueAvg
	}
	return v
}

// partitionLinkRate is the per-node link-fault rate above which a node
// counts toward partition inference: sustained dial failures, drops or
// reconnect churn on its transport matrix.
const partitionLinkRate = 0.2

// computeSignals derives the per-tick digest from the stores. Caller
// holds m.mu.
func (m *Monitor) computeSignals(now time.Time) *ClusterSignals {
	W := m.cfg.Window
	cs := &ClusterSignals{At: now, Total: len(m.nodes)}

	// First pass: per-node series-derived signals and the cluster
	// high-water commit mark over reachable nodes.
	maxSeq := -1.0
	for _, ns := range m.nodes {
		sig := NodeSignals{
			Name:        ns.Target.Name,
			Up:          ns.ConsecutiveFailures == 0 && ns.TotalScrapes > ns.TotalFailures,
			Unreachable: ns.ConsecutiveFailures >= 2 || ns.TotalScrapes == ns.TotalFailures,
			Failures:    float64(ns.ConsecutiveFailures),
		}
		st := ns.Store
		sig.CommitSeq = st.LastValue("healthz:last_commit_seq", 0)
		if s := st.Get("healthz:last_commit_seq"); s != nil {
			sig.CommitRate = s.Rate(W)
		}
		sig.ViewChangeRate = sumRate(st, W, func(k string) bool {
			return keyFamily(k) == "bftkit_phase_msgs_sent_total" && keyHasLabel(k, "phase", obsv.PhaseViewChange)
		})
		sig.LinkFaultRate = sumRate(st, W, func(k string) bool {
			if keyFamily(k) != "bftkit_transport_events_total" {
				return false
			}
			return keyHasLabel(k, "event", "dial_fail") ||
				keyHasLabel(k, "event", "conn_drop") ||
				keyHasLabel(k, "event", "reconnect")
		})
		sig.ClientDemand = st.SumDelta(W, func(k string) bool {
			return keyFamily(k) == "bftkit_phase_msgs_recv_total" && keyHasLabel(k, "phase", obsv.PhaseClient)
		})
		// Windowed mean verify-lane backlog: the depth histogram samples
		// at each enqueue, so delta(sum)/delta(count) is the mean depth
		// over just this window.
		vq := st.SumDelta(W, func(k string) bool { return keyFamily(k) == "bftkit_verify_queue_depth_msgs_count" })
		if vq > 0 {
			sig.VerifyQueueAvg = st.SumDelta(W, func(k string) bool {
				return keyFamily(k) == "bftkit_verify_queue_depth_msgs_sum"
			}) / vq
		}
		for _, k := range st.Keys() {
			if keyFamily(k) == "bftkit_forensics_suspicion" {
				if v := st.LastValue(k, 0); v > sig.Suspicion {
					sig.Suspicion = v
				}
			}
		}
		if ns.Report != nil {
			sig.Proofs = float64(ns.Report.Proofs)
			if ns.Report.MaxSuspicion > sig.Suspicion {
				sig.Suspicion = ns.Report.MaxSuspicion
			}
		}
		if !sig.Unreachable {
			cs.Reachable++
			if sig.CommitSeq > maxSeq {
				maxSeq = sig.CommitSeq
			}
		}
		cs.Nodes = append(cs.Nodes, sig)
	}
	sort.Slice(cs.Nodes, func(i, j int) bool { return cs.Nodes[i].Name < cs.Nodes[j].Name })

	// Second pass: signals relative to the cluster high-water mark.
	var demand float64
	for i := range cs.Nodes {
		n := &cs.Nodes[i]
		if n.Unreachable {
			continue
		}
		if lag := maxSeq - n.CommitSeq; lag > 0 {
			n.SlotLag = lag
		}
		demand += n.ClientDemand
		if n.LinkFaultRate >= partitionLinkRate {
			cs.PartitionNodes++
		}
		if n.CommitRate > cs.ClusterCommitRate {
			cs.ClusterCommitRate = n.CommitRate
		}
		if n.Proofs > cs.ForensicsProofs {
			cs.ForensicsProofs = n.Proofs
		}
		if n.Suspicion > cs.MaxSuspicion {
			cs.MaxSuspicion = n.Suspicion
		}
	}
	if maxSeq > 0 {
		cs.ClusterCommitSeq = maxSeq
	}

	// Cluster progress: track the high-water mark as its own series so
	// the stall signal sees "no slot committed anywhere" even while
	// individual nodes churn. Stall requires demand — clients delivering
	// requests — so an idle cluster is quiet, not stalled.
	if maxSeq >= 0 {
		m.cluster.Observe("cluster:max_commit_seq", Point{At: now, V: maxSeq})
	}
	if s := m.cluster.Get("cluster:max_commit_seq"); s != nil && s.Len() >= 2 {
		if demand > 0 && s.Delta(W) == 0 {
			cs.ProgressStall = 1
		}
	}

	// Cluster latency quantiles: sum each bucket's windowed delta across
	// reachable nodes, then reconstruct. Deltas make this the latency of
	// just-this-window commits, not the run-so-far average.
	cs.LatencyP50us, cs.LatencyP99us = m.windowLatency(W)
	return cs
}

// windowLatency reconstructs p50/p99 slot latency from the cumulative
// bucket ladders, windowed: each node's per-bucket delta over the
// lookback is summed cluster-wide, giving one merged ladder for the
// window.
func (m *Monitor) windowLatency(W int) (p50, p99 float64) {
	const fam = "bftkit_slot_latency_microseconds_bucket"
	byUpper := make(map[float64]float64)
	var count float64
	for _, ns := range m.nodes {
		if ns.ConsecutiveFailures >= 2 {
			continue
		}
		for k, s := range ns.Store.series {
			if keyFamily(k) != fam {
				continue
			}
			if up, ok := bucketUpper(k); ok {
				byUpper[up] += s.Delta(W)
			}
		}
		if s := ns.Store.Get("bftkit_slot_latency_microseconds_count"); s != nil {
			count += s.Delta(W)
		}
	}
	if count == 0 || len(byUpper) == 0 {
		return 0, 0
	}
	uppers := make([]float64, 0, len(byUpper))
	for up := range byUpper {
		uppers = append(uppers, up)
	}
	sort.Float64s(uppers)
	ladder := make([]obsv.PromBucket, 0, len(uppers))
	var cum float64
	for _, up := range uppers {
		cum += byUpper[up]
		ladder = append(ladder, obsv.PromBucket{Upper: up, Cum: cum})
	}
	return obsv.QuantileFromCumulative(ladder, count, 0.50),
		obsv.QuantileFromCumulative(ladder, count, 0.99)
}

func sumRate(st *Store, window int, match func(string) bool) float64 {
	var sum float64
	for k, s := range st.series {
		if match(k) {
			sum += s.Rate(window)
		}
	}
	return sum
}
