package monitor

import (
	"math"
	"testing"
	"time"
)

func ts(sec int) time.Time { return time.Unix(1700000000+int64(sec), 0) }

func TestSeriesRingBounds(t *testing.T) {
	s := NewSeries(4)
	for i := 0; i < 10; i++ {
		s.Add(Point{At: ts(i), V: float64(i)})
	}
	if s.Len() != 4 {
		t.Fatalf("len = %d, want 4 (ring bound)", s.Len())
	}
	if s.At(0).V != 6 || s.At(3).V != 9 {
		t.Fatalf("ring window = [%g..%g], want [6..9]", s.At(0).V, s.At(3).V)
	}
	last, ok := s.Last()
	if !ok || last.V != 9 {
		t.Fatalf("last = %+v", last)
	}
}

func TestSeriesDeltaAndRate(t *testing.T) {
	s := NewSeries(16)
	// A counter advancing 5/tick at 1 tick/sec.
	for i := 0; i < 10; i++ {
		s.Add(Point{At: ts(i), V: float64(i * 5)})
	}
	if d := s.Delta(4); d != 20 {
		t.Fatalf("delta(4) = %g, want 20", d)
	}
	if r := s.Rate(4); r != 5 {
		t.Fatalf("rate(4) = %g, want 5", r)
	}
	// Window beyond history clamps to the oldest point.
	if d := s.Delta(100); d != 45 {
		t.Fatalf("delta(100) = %g, want 45", d)
	}
	// One point can derive nothing.
	one := NewSeries(4)
	one.Add(Point{At: ts(0), V: 7})
	if d := one.Delta(4); d != 0 {
		t.Fatalf("single-point delta = %g, want 0", d)
	}
}

func TestSeriesCounterResetDetection(t *testing.T) {
	s := NewSeries(16)
	s.Add(Point{At: ts(0), V: 100})
	s.Add(Point{At: ts(1), V: 110})
	// Node restarted: counter reset to near zero, then advanced.
	s.Add(Point{At: ts(2), V: 3})
	if d := s.Delta(2); d != 3 {
		t.Fatalf("post-reset delta = %g, want 3 (the restarted counter's value)", d)
	}
	if r := s.Rate(2); r < 0 {
		t.Fatalf("post-reset rate = %g, negative rates must never surface", r)
	}
}

func TestStoreSumDeltaAndKeys(t *testing.T) {
	st := NewStore(8)
	for i := 0; i < 4; i++ {
		st.Observe("a_total|event=x", Point{At: ts(i), V: float64(i)})
		st.Observe("a_total|event=y", Point{At: ts(i), V: float64(2 * i)})
		st.Observe("b_total", Point{At: ts(i), V: float64(10 * i)})
	}
	got := st.SumDelta(3, func(k string) bool { return keyFamily(k) == "a_total" })
	if got != 3+6 {
		t.Fatalf("SumDelta(a_total) = %g, want 9", got)
	}
	keys := st.Keys()
	if len(keys) != 3 || keys[0] != "a_total|event=x" || keys[2] != "b_total" {
		t.Fatalf("keys = %v", keys)
	}
	if v := st.LastValue("b_total", -1); v != 30 {
		t.Fatalf("LastValue(b_total) = %g", v)
	}
	if v := st.LastValue("missing", -1); v != -1 {
		t.Fatalf("LastValue(missing) = %g, want default", v)
	}
}

func TestKeyHelpers(t *testing.T) {
	key := "bftkit_phase_msgs_sent_total|node=r0|phase=view-change"
	if keyFamily(key) != "bftkit_phase_msgs_sent_total" {
		t.Fatalf("family = %q", keyFamily(key))
	}
	if !keyHasLabel(key, "phase", "view-change") || !keyHasLabel(key, "node", "r0") {
		t.Fatal("label match failed")
	}
	if keyHasLabel(key, "phase", "view") || keyHasLabel(key, "node", "r") {
		t.Fatal("prefix of a label value must not match")
	}
	if v, ok := keyLabel(key, "node"); !ok || v != "r0" {
		t.Fatalf("keyLabel(node) = %q, %v", v, ok)
	}
	up, ok := bucketUpper("h_bucket|le=4095")
	if !ok || up != 4095 {
		t.Fatalf("bucketUpper = %g, %v", up, ok)
	}
	up, ok = bucketUpper("h_bucket|le=+Inf")
	if !ok || !math.IsInf(up, 1) {
		t.Fatalf("bucketUpper(+Inf) = %g, %v", up, ok)
	}
	if _, ok := bucketUpper("h_count"); ok {
		t.Fatal("no-le key must not parse as a bucket")
	}
}
