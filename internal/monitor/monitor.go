package monitor

import (
	"context"
	"sync"
	"time"
)

// Config shapes a Monitor. Zero values pick the defaults noted inline.
type Config struct {
	Targets  []Target
	Interval time.Duration // scrape period (default 1s)
	// Window is the lookback, in scrapes, for every rate and delta
	// derivation (default 8). Larger smooths noise; smaller detects
	// faster.
	Window int
	// History bounds each ring-buffer series, in points (default 256).
	History int
	// ScrapeTimeout bounds each HTTP fetch (default min(Interval, 2s)).
	ScrapeTimeout time.Duration
	// Rules is the alert rule set (default DefaultRules()).
	Rules []Rule
	// OnAlert, when set, receives every firing/resolved transition as it
	// is detected.
	OnAlert func(Alert)
}

// NodeState is everything the monitor knows about one target.
type NodeState struct {
	Target Target
	Store  *Store

	// Health and Report are the latest successful scrape's payloads;
	// LastOK dates them. ConsecutiveFailures counts scrapes since, so
	// staleness is measured in intervals, not wall time: a node whose
	// scrape age exceeds two intervals is flagged unreachable rather
	// than silently represented by stale samples.
	Health              *healthSnapshot
	Report              *reportSnapshot
	LastOK              time.Time
	ConsecutiveFailures int
	TotalScrapes        int
	TotalFailures       int
	LastErr             error
}

// Monitor owns the scrape loop, the per-target stores, the signal
// computation and the alert engine. All exported accessors are safe to
// call while the loop runs.
type Monitor struct {
	cfg     Config
	scraper *Scraper
	engine  *Engine

	mu      sync.Mutex
	nodes   []*NodeState
	cluster *Store // synthetic cluster-level series (max commit seq, ...)
	last    *ClusterSignals
	alerts  []Alert // full transition log, firing and resolved
	ticks   int
}

func New(cfg Config) *Monitor {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Window <= 0 {
		cfg.Window = 8
	}
	if cfg.History <= 0 {
		cfg.History = 256
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = 2 * time.Second
		if cfg.Interval < cfg.ScrapeTimeout {
			cfg.ScrapeTimeout = cfg.Interval
		}
	}
	if cfg.Rules == nil {
		cfg.Rules = DefaultRules()
	}
	m := &Monitor{
		cfg:     cfg,
		scraper: NewScraper(cfg.ScrapeTimeout),
		engine:  NewEngine(cfg.Rules),
		cluster: NewStore(cfg.History),
	}
	for _, t := range cfg.Targets {
		m.nodes = append(m.nodes, &NodeState{Target: t, Store: NewStore(cfg.History)})
	}
	return m
}

// Run scrapes every Interval until ctx is done. The first scrape fires
// immediately.
func (m *Monitor) Run(ctx context.Context) {
	tick := time.NewTicker(m.cfg.Interval)
	defer tick.Stop()
	for {
		m.Tick(time.Now())
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

// Tick performs one scrape round — every target in parallel — then
// recomputes signals and evaluates the alert rules. It returns the
// transitions this round produced. Tests drive Tick directly to get a
// deterministic scrape count.
func (m *Monitor) Tick(now time.Time) []Alert {
	samples := make([]Sample, len(m.nodes))
	var wg sync.WaitGroup
	for i := range m.nodes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			samples[i] = m.scraper.Scrape(m.nodes[i].Target, now)
		}(i)
	}
	wg.Wait()

	m.mu.Lock()
	defer m.mu.Unlock()
	m.ticks++
	for i, ns := range m.nodes {
		m.ingest(ns, samples[i])
	}
	sig := m.computeSignals(now)
	m.last = sig
	trans := m.engine.Eval(now, sig.Values())
	m.alerts = append(m.alerts, trans...)
	if m.cfg.OnAlert != nil {
		for _, a := range trans {
			m.cfg.OnAlert(a)
		}
	}
	return trans
}

// ingest folds one sample into a node's state: every Prometheus sample
// becomes a ring-buffer point keyed by its series identity, and the
// healthz progress marker becomes the synthetic series the progress
// and straggler signals divide on.
func (m *Monitor) ingest(ns *NodeState, smp Sample) {
	ns.TotalScrapes++
	if smp.Err != nil {
		ns.TotalFailures++
		ns.ConsecutiveFailures++
		ns.LastErr = smp.Err
		return
	}
	ns.ConsecutiveFailures = 0
	ns.LastErr = nil
	ns.LastOK = smp.At
	for _, f := range smp.Families {
		for _, s := range f.Samples {
			ns.Store.Observe(s.SeriesKey(), Point{At: smp.At, V: s.Value})
		}
	}
	if smp.Health != nil {
		h := healthSnapshot{
			Protocol:      smp.Health.Protocol,
			Node:          smp.Health.Node,
			N:             smp.Health.N,
			F:             smp.Health.F,
			LastCommitSeq: smp.Health.LastCommitSeq,
			Uptime:        smp.Health.UptimeSeconds,
		}
		ns.Health = &h
		ns.Store.Observe("healthz:last_commit_seq", Point{At: smp.At, V: float64(h.LastCommitSeq)})
		ns.Store.Observe("healthz:uptime_seconds", Point{At: smp.At, V: h.Uptime})
	}
	if smp.Report != nil {
		rs := reportSnapshot{Proofs: len(smp.Report.Proofs)}
		for _, p := range smp.Report.Proofs {
			rs.Kinds = append(rs.Kinds, p.Proof)
		}
		for _, sc := range smp.Report.Scores {
			if sc.Suspicion > rs.MaxSuspicion {
				rs.MaxSuspicion = sc.Suspicion
			}
		}
		ns.Report = &rs
	}
}

// healthSnapshot is the monitor-side digest of one /healthz payload.
type healthSnapshot struct {
	Protocol      string
	Node          int
	N, F          int
	LastCommitSeq uint64
	Uptime        float64
}

// reportSnapshot is the monitor-side digest of one /forensics verdict.
type reportSnapshot struct {
	Proofs       int
	Kinds        []string
	MaxSuspicion float64
}

// Signals returns the most recent per-tick signal snapshot (nil before
// the first Tick).
func (m *Monitor) Signals() *ClusterSignals {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.last
}

// Alerts returns the full transition log: every firing and resolved
// event since the monitor started.
func (m *Monitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// Firing returns the alerts currently in the firing state.
func (m *Monitor) Firing() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.engine.Firing()
}

// Ticks returns how many scrape rounds have completed.
func (m *Monitor) Ticks() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ticks
}
