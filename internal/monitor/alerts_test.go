package monitor

import (
	"strings"
	"testing"
)

// feed replays a canned per-tick value stream for one signal/scope
// through an engine and returns every transition, proving the engine
// is deterministic on sample streams alone.
func feed(t *testing.T, e *Engine, signal, scope string, stream []float64) []Alert {
	t.Helper()
	var out []Alert
	for i, v := range stream {
		out = append(out, e.Eval(ts(i), map[string]map[string]float64{signal: {scope: v}})...)
	}
	return out
}

func TestRuleForDuration(t *testing.T) {
	e := NewEngine([]Rule{{Name: "storm", Signal: "vc", Threshold: 8, For: 3}})
	// Two breaches, a dip, then three sustained: only the sustained run fires.
	got := feed(t, e, "vc", "r0", []float64{9, 10, 2, 9, 9, 9})
	if len(got) != 1 || got[0].State != "firing" {
		t.Fatalf("transitions = %+v, want one firing", got)
	}
	if !got[0].At.Equal(ts(5)) {
		t.Fatalf("fired at %v, want tick 5 (third consecutive breach)", got[0].At)
	}
	if !got[0].Since.Equal(ts(3)) {
		t.Fatalf("since = %v, want tick 3 (episode start)", got[0].Since)
	}
}

func TestRuleHysteresis(t *testing.T) {
	e := NewEngine([]Rule{{Name: "storm", Signal: "vc", Threshold: 8, For: 1, ClearBelow: 2, ClearFor: 2}})
	// Fires at 9; 5 and 3 are below threshold but above ClearBelow, so it
	// stays firing; two consecutive ticks under 2 resolve it.
	got := feed(t, e, "vc", "r0", []float64{9, 5, 3, 1, 1, 0})
	if len(got) != 2 {
		t.Fatalf("transitions = %+v, want firing+resolved", got)
	}
	if got[0].State != "firing" || !got[0].At.Equal(ts(0)) {
		t.Fatalf("first = %+v", got[0])
	}
	if got[1].State != "resolved" || !got[1].At.Equal(ts(4)) {
		t.Fatalf("resolved = %+v, want at tick 4 (second consecutive clear)", got[1])
	}
}

func TestRuleRefire(t *testing.T) {
	e := NewEngine([]Rule{{Name: "lag", Signal: "slot_lag", Threshold: 8, For: 2, ClearBelow: 4}})
	got := feed(t, e, "slot_lag", "r2", []float64{9, 9, 0, 9, 9})
	want := []string{"firing", "resolved", "firing"}
	if len(got) != len(want) {
		t.Fatalf("transitions = %+v, want %v", got, want)
	}
	for i, st := range want {
		if got[i].State != st {
			t.Fatalf("transition %d = %+v, want %s", i, got[i], st)
		}
	}
}

func TestEngineScopesAreIndependent(t *testing.T) {
	e := NewEngine([]Rule{{Name: "down", Signal: "node_down", Threshold: 1, For: 2}})
	for i := 0; i < 3; i++ {
		vals := map[string]map[string]float64{"node_down": {"r0": 1, "r1": 0}}
		trans := e.Eval(ts(i), vals)
		if i == 1 {
			if len(trans) != 1 || trans[0].Scope != "r0" {
				t.Fatalf("tick %d transitions = %+v", i, trans)
			}
		} else if len(trans) != 0 {
			t.Fatalf("tick %d transitions = %+v, want none", i, trans)
		}
	}
	firing := e.Firing()
	if len(firing) != 1 || firing[0].Scope != "r0" || firing[0].Rule != "down" {
		t.Fatalf("firing = %+v", firing)
	}
}

func TestEngineDeterministicReplay(t *testing.T) {
	stream := []float64{0, 9, 9, 1, 9, 9, 9, 0, 0, 0}
	run := func() []Alert {
		e := NewEngine(DefaultRules())
		var out []Alert
		for i, v := range stream {
			out = append(out, e.Eval(ts(i), map[string]map[string]float64{
				SigViewChangeRate: {"r0": v},
				SigNodeDown:       {"r0": 0},
			})...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("replay diverged: %d vs %d transitions", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// The stream produces two storm episodes: ticks 1-2 fire, the dip to
	// 1 (below ClearBelow 2) resolves, and ticks 4-5 re-fire.
	var fires, resolves int
	for _, tr := range a {
		if tr.Rule == "view_change_storm" {
			if tr.State == "firing" {
				fires++
			} else {
				resolves++
			}
		}
	}
	if fires != 2 || resolves != 2 {
		t.Fatalf("storm fired %d/resolved %d times, want 2/2 (transitions: %+v)", fires, resolves, a)
	}
}

func TestDefaultRulesQuietOnCleanSignals(t *testing.T) {
	e := NewEngine(DefaultRules())
	clean := &ClusterSignals{
		Nodes: []NodeSignals{
			{Name: "r0", Up: true, CommitSeq: 100, CommitRate: 12},
			{Name: "r1", Up: true, CommitSeq: 100, CommitRate: 12},
			{Name: "r2", Up: true, CommitSeq: 99, CommitRate: 12, SlotLag: 1},
			{Name: "r3", Up: true, CommitSeq: 100, CommitRate: 12},
		},
		Reachable: 4, Total: 4, ClusterCommitRate: 12,
	}
	for i := 0; i < 20; i++ {
		if trans := e.Eval(ts(i), clean.Values()); len(trans) != 0 {
			t.Fatalf("clean signals produced transitions: %+v", trans)
		}
	}
	if f := e.Firing(); len(f) != 0 {
		t.Fatalf("clean signals left alerts firing: %+v", f)
	}
}

func TestAlertStringAndLog(t *testing.T) {
	a := Alert{Rule: "node_unreachable", Scope: "r1", State: "firing", Value: 1,
		At: ts(3), Since: ts(2), Severity: "critical"}
	s := a.String()
	for _, want := range []string{"node_unreachable", "firing", "r1", "critical"} {
		if !strings.Contains(s, want) {
			t.Fatalf("alert string %q missing %q", s, want)
		}
	}
}
