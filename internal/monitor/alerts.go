package monitor

import (
	"fmt"
	"sort"
	"time"
)

// Rule is one deterministic alert rule: the named signal must be >=
// Threshold for For consecutive evaluations to fire, and must then
// stay below ClearBelow (hysteresis — defaults to Threshold) for
// ClearFor consecutive evaluations to resolve. Everything is counted
// in evaluations, not wall time, so canned sample streams replay
// identically.
type Rule struct {
	Name      string  `json:"name"`
	Signal    string  `json:"signal"`
	Threshold float64 `json:"threshold"`
	// For is the consecutive breach count required to fire (min 1).
	For int `json:"for"`
	// ClearBelow is the resolve threshold; 0 means Threshold. A gap
	// between the two stops a signal oscillating around the line from
	// flapping the alert.
	ClearBelow float64 `json:"clear_below,omitempty"`
	// ClearFor is the consecutive clear count required to resolve
	// (min 1).
	ClearFor int    `json:"clear_for,omitempty"`
	Severity string `json:"severity,omitempty"` // "critical"|"warning"
	Help     string `json:"help,omitempty"`
}

func (r Rule) clearBelow() float64 {
	if r.ClearBelow > 0 {
		return r.ClearBelow
	}
	return r.Threshold
}

// Alert is one state transition (or, from Firing(), a live firing
// state).
type Alert struct {
	Rule     string    `json:"rule"`
	Scope    string    `json:"scope"` // target name, or "cluster"
	State    string    `json:"state"` // "firing" | "resolved"
	Value    float64   `json:"value"` // signal value at transition
	At       time.Time `json:"at"`
	Since    time.Time `json:"since"` // first breach of the current episode
	Severity string    `json:"severity,omitempty"`
	Help     string    `json:"help,omitempty"`
}

func (a Alert) String() string {
	return fmt.Sprintf("[%s] %s %s scope=%s value=%g", a.Severity, a.Rule, a.State, a.Scope, a.Value)
}

// Engine evaluates a rule set against successive signal snapshots and
// reports firing/resolved transitions. It is deterministic: the same
// sequence of snapshots always produces the same transitions.
type Engine struct {
	rules []Rule
	state map[string]*ruleState // key: rule|scope
}

type ruleState struct {
	breaches int // consecutive evaluations at/above threshold
	clears   int // consecutive evaluations below clearBelow while firing
	firing   bool
	since    time.Time
	value    float64
	rule     Rule
	scope    string
}

func NewEngine(rules []Rule) *Engine {
	return &Engine{rules: rules, state: make(map[string]*ruleState)}
}

// Eval runs one evaluation round over signal → scope → value and
// returns the transitions it caused, deterministically ordered. A
// scope that disappears from the input (node removed) keeps its state
// but is not evaluated.
func (e *Engine) Eval(at time.Time, values map[string]map[string]float64) []Alert {
	var out []Alert
	for _, r := range e.rules {
		scopes := values[r.Signal]
		names := make([]string, 0, len(scopes))
		for sc := range scopes {
			names = append(names, sc)
		}
		sort.Strings(names)
		for _, sc := range names {
			v := scopes[sc]
			key := r.Name + "|" + sc
			st := e.state[key]
			if st == nil {
				st = &ruleState{rule: r, scope: sc}
				e.state[key] = st
			}
			st.value = v
			if !st.firing {
				if v >= r.Threshold {
					if st.breaches == 0 {
						st.since = at
					}
					st.breaches++
					if st.breaches >= max(1, r.For) {
						st.firing = true
						st.clears = 0
						out = append(out, e.alert(st, "firing", at))
					}
				} else {
					st.breaches = 0
				}
				continue
			}
			// Firing: hysteresis — only a sustained drop below the clear
			// line resolves.
			if v < r.clearBelow() {
				st.clears++
				if st.clears >= max(1, r.ClearFor) {
					st.firing = false
					st.breaches = 0
					st.clears = 0
					out = append(out, e.alert(st, "resolved", at))
				}
			} else {
				st.clears = 0
			}
		}
	}
	return out
}

func (e *Engine) alert(st *ruleState, state string, at time.Time) Alert {
	return Alert{
		Rule:     st.rule.Name,
		Scope:    st.scope,
		State:    state,
		Value:    st.value,
		At:       at,
		Since:    st.since,
		Severity: st.rule.Severity,
		Help:     st.rule.Help,
	}
}

// Firing lists the currently-firing states, deterministically ordered.
func (e *Engine) Firing() []Alert {
	keys := make([]string, 0, len(e.state))
	for k, st := range e.state {
		if st.firing {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]Alert, 0, len(keys))
	for _, k := range keys {
		st := e.state[k]
		out = append(out, e.alert(st, "firing", st.since))
	}
	return out
}

// DefaultRules is the stock rule set bftmon ships with. Thresholds are
// set so a clean, progressing cluster is silent: view changes, link
// churn and verify backlog all sit at zero in steady state, so any
// sustained signal is a fault, not noise.
func DefaultRules() []Rule {
	return []Rule{
		{Name: "node_unreachable", Signal: SigNodeDown, Threshold: 1, For: 1,
			Severity: "critical", Help: "scrape age exceeded two intervals; the node's ops surface is gone"},
		{Name: "progress_stall", Signal: SigProgressStall, Threshold: 1, For: 3,
			Severity: "critical", Help: "client demand is flowing but no replica committed a new slot all window"},
		{Name: "view_change_storm", Signal: SigViewChangeRate, Threshold: 8, For: 2, ClearBelow: 2,
			Severity: "critical", Help: "sustained view-change traffic; the cluster is burning slots on leader elections"},
		{Name: "replica_straggler", Signal: SigSlotLag, Threshold: 8, For: 3, ClearBelow: 4,
			Severity: "warning", Help: "this replica's committed slot trails the cluster high-water mark"},
		{Name: "link_failures", Signal: SigLinkFaultRate, Threshold: 0.5, For: 2, ClearBelow: 0.1,
			Severity: "warning", Help: "sustained dial failures, connection drops or reconnect churn on this node's transport"},
		{Name: "partition_suspected", Signal: SigPartitionNodes, Threshold: 2, For: 2,
			Severity: "critical", Help: "two or more nodes show active link faults; the connection matrix suggests a partition"},
		{Name: "verify_saturation", Signal: SigVerifyQueueAvg, Threshold: 64, For: 3, ClearBelow: 16,
			Severity: "warning", Help: "inbound signature-verification backlog is sustained; the verify pool is saturated"},
		{Name: "byzantine_proof", Signal: SigForensicsProof, Threshold: 1, For: 1,
			Severity: "critical", Help: "the accountability auditor holds a verifiable misbehavior proof"},
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
