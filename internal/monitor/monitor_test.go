package monitor

import (
	"context"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"bftkit/internal/forensics"
	"bftkit/internal/obsv"
	"bftkit/internal/ops"
	"bftkit/internal/types"
)

// fakeNode is one synthetic scrape target: a real ops.Mux over a real
// tracer, driven by the test. The monitor sees exactly what it would
// see scraping a live replica.
type fakeNode struct {
	id     types.NodeID
	tracer *obsv.Tracer
	seq    atomic.Uint64
	report atomic.Pointer[forensics.Report]
	srv    *httptest.Server
}

func newFakeNode(t *testing.T, id types.NodeID, n int) *fakeNode {
	t.Helper()
	fn := &fakeNode{id: id}
	fn.tracer = obsv.New(obsv.Options{Label: "fake"})
	fn.tracer.SetNodeInfo(obsv.NodeInfo{Node: id, Protocol: "pbft", N: n, F: 1,
		Start: time.Unix(1700000000, 0)})
	health := func() ops.Health {
		return ops.Health{Protocol: "pbft", Node: int(id), N: n, F: 1,
			LastCommitSeq: fn.seq.Load()}
	}
	report := func() *forensics.Report { return fn.report.Load() }
	fn.srv = httptest.NewServer(ops.Mux(health, time.Unix(1700000000, 0), fn.tracer, report))
	t.Cleanup(fn.srv.Close)
	return fn
}

func (fn *fakeNode) target() Target {
	return Target{Name: fn.id.String(), BaseURL: fn.srv.URL}
}

type testMsg struct {
	kind string
	seq  types.SeqNum
}

func (m testMsg) Kind() string                     { return m.kind }
func (m testMsg) Slot() (types.View, types.SeqNum) { return 0, m.seq }

// commitSlots advances the node: client demand arrives, ordering
// traffic flows, and slots commit — the steady-state heartbeat of a
// healthy replica.
func (fn *fakeNode) commitSlots(k int) {
	for i := 0; i < k; i++ {
		seq := types.SeqNum(fn.seq.Load() + 1)
		d := time.Duration(seq) * time.Millisecond
		fn.tracer.MsgDelivered(d, types.NodeID(types.ClientIDBase), fn.id, testMsg{kind: "REQUEST"}, 64)
		fn.tracer.MsgSent(d, fn.id, fn.id+1, testMsg{kind: "PREPARE", seq: seq}, 128)
		fn.tracer.Commit(d+2*time.Millisecond, fn.id, 0, seq)
		fn.seq.Add(1)
	}
}

// demandOnly delivers client requests without committing anything —
// the stall shape.
func (fn *fakeNode) demandOnly(k int) {
	for i := 0; i < k; i++ {
		fn.tracer.MsgDelivered(time.Second, types.NodeID(types.ClientIDBase), fn.id, testMsg{kind: "REQUEST"}, 64)
	}
}

func (fn *fakeNode) viewChangeBurst(k int) {
	for i := 0; i < k; i++ {
		fn.tracer.MsgSent(time.Second, fn.id, fn.id+1, testMsg{kind: "VIEW-CHANGE", seq: 1}, 256)
	}
}

func newTestMonitor(t *testing.T, window int, nodes ...*fakeNode) *Monitor {
	t.Helper()
	targets := make([]Target, len(nodes))
	for i, fn := range nodes {
		targets[i] = fn.target()
	}
	return New(Config{Targets: targets, Interval: time.Second, Window: window})
}

func TestMonitorCleanClusterIsQuiet(t *testing.T) {
	var nodes []*fakeNode
	for i := 0; i < 3; i++ {
		nodes = append(nodes, newFakeNode(t, types.NodeID(i), 3))
	}
	m := newTestMonitor(t, 4, nodes...)
	for tick := 0; tick < 10; tick++ {
		for _, fn := range nodes {
			fn.commitSlots(5)
		}
		if trans := m.Tick(ts(tick)); len(trans) != 0 {
			t.Fatalf("tick %d: clean cluster produced transitions: %+v", tick, trans)
		}
	}
	sig := m.Signals()
	if sig == nil || sig.Reachable != 3 || sig.Total != 3 {
		t.Fatalf("signals = %+v", sig)
	}
	if sig.ClusterCommitRate < 4 || sig.ClusterCommitRate > 6 {
		t.Fatalf("cluster commit rate = %g, want ~5 slots/s", sig.ClusterCommitRate)
	}
	if sig.ClusterCommitSeq != 50 {
		t.Fatalf("cluster commit seq = %g, want 50", sig.ClusterCommitSeq)
	}
	// Slot latency flowed through the bucket deltas: every commit took
	// 2ms, so both quantiles land in the 2047..4095µs power-of-two bucket.
	if sig.LatencyP50us < 2000 || sig.LatencyP50us > 4095 {
		t.Fatalf("p50 = %gµs, want within the 2ms bucket", sig.LatencyP50us)
	}
	if len(m.Firing()) != 0 {
		t.Fatalf("firing = %+v", m.Firing())
	}
}

func TestMonitorFlagsUnreachableNode(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, 0, 2), newFakeNode(t, 1, 2)}
	m := newTestMonitor(t, 4, nodes...)
	for tick := 0; tick < 3; tick++ {
		for _, fn := range nodes {
			fn.commitSlots(2)
		}
		m.Tick(ts(tick))
	}
	nodes[1].srv.Close() // node r1 dies

	var fired *Alert
	for tick := 3; tick < 8 && fired == nil; tick++ {
		nodes[0].commitSlots(2)
		for _, a := range m.Tick(ts(tick)) {
			if a.Rule == "node_unreachable" && a.State == "firing" {
				fired = &a
				// Staleness gate: one missed scrape is tolerated, two is
				// unreachable — so the alert lands on the second failed tick.
				if !a.At.Equal(ts(4)) {
					t.Fatalf("fired at %v, want tick 4 (scrape age > 2 intervals)", a.At)
				}
			}
		}
	}
	if fired == nil {
		t.Fatal("node_unreachable never fired")
	}
	if fired.Scope != "r1" {
		t.Fatalf("fired for %q, want r1", fired.Scope)
	}
	sig := m.Signals()
	for _, n := range sig.Nodes {
		if n.Name == "r1" && !n.Unreachable {
			t.Fatalf("r1 signals = %+v, want unreachable", n)
		}
		if n.Name == "r0" && (!n.Up || n.Unreachable) {
			t.Fatalf("r0 signals = %+v, want up", n)
		}
	}
}

func TestMonitorDetectsProgressStall(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, 0, 2), newFakeNode(t, 1, 2)}
	m := New(Config{Targets: []Target{nodes[0].target(), nodes[1].target()},
		Interval: time.Second, Window: 2})
	for tick := 0; tick < 4; tick++ {
		for _, fn := range nodes {
			fn.commitSlots(3)
		}
		m.Tick(ts(tick))
	}
	// Demand keeps flowing but nothing commits: the stall composite must
	// go high and, after the rule's For gate, fire.
	var fired bool
	for tick := 4; tick < 12 && !fired; tick++ {
		for _, fn := range nodes {
			fn.demandOnly(3)
		}
		for _, a := range m.Tick(ts(tick)) {
			if a.Rule == "progress_stall" && a.State == "firing" {
				fired = true
			}
		}
	}
	if !fired {
		t.Fatalf("progress_stall never fired; signals = %+v", m.Signals())
	}
	// And an idle cluster (no demand, no commits) is NOT a stall.
	m2 := New(Config{Targets: []Target{nodes[0].target(), nodes[1].target()},
		Interval: time.Second, Window: 2})
	for tick := 0; tick < 8; tick++ {
		if trans := m2.Tick(ts(tick)); len(trans) != 0 {
			t.Fatalf("idle cluster produced transitions: %+v", trans)
		}
	}
	if sig := m2.Signals(); sig.ProgressStall != 0 {
		t.Fatalf("idle cluster stall = %g, want 0", sig.ProgressStall)
	}
}

func TestMonitorDetectsViewChangeStorm(t *testing.T) {
	fn := newFakeNode(t, 0, 1)
	m := newTestMonitor(t, 2, fn)
	fn.commitSlots(3)
	m.Tick(ts(0))
	var fired bool
	for tick := 1; tick < 6 && !fired; tick++ {
		fn.commitSlots(1)
		fn.viewChangeBurst(20) // 20 VC msgs/s >> the 8/s threshold
		for _, a := range m.Tick(ts(tick)) {
			if a.Rule == "view_change_storm" && a.State == "firing" {
				fired = true
			}
		}
	}
	if !fired {
		t.Fatalf("view_change_storm never fired; signals = %+v", m.Signals())
	}
	// Storm subsides below ClearBelow: the alert must resolve.
	var resolved bool
	for tick := 6; tick < 14 && !resolved; tick++ {
		fn.commitSlots(1)
		for _, a := range m.Tick(ts(tick)) {
			if a.Rule == "view_change_storm" && a.State == "resolved" {
				resolved = true
			}
		}
	}
	if !resolved {
		t.Fatal("view_change_storm never resolved after the storm subsided")
	}
}

func TestMonitorDetectsStraggler(t *testing.T) {
	nodes := []*fakeNode{newFakeNode(t, 0, 2), newFakeNode(t, 1, 2)}
	m := newTestMonitor(t, 2, nodes...)
	var fired *Alert
	for tick := 0; tick < 10 && fired == nil; tick++ {
		nodes[0].commitSlots(5)
		nodes[1].commitSlots(1) // trails 4 slots/tick
		for _, a := range m.Tick(ts(tick)) {
			if a.Rule == "replica_straggler" && a.State == "firing" {
				fired = &a
			}
		}
	}
	if fired == nil {
		t.Fatalf("replica_straggler never fired; signals = %+v", m.Signals())
	}
	if fired.Scope != "r1" {
		t.Fatalf("straggler scope = %q, want r1", fired.Scope)
	}
}

func TestMonitorSurfacesForensicsProof(t *testing.T) {
	fn := newFakeNode(t, 0, 4)
	m := newTestMonitor(t, 4, fn)
	fn.commitSlots(2)
	if trans := m.Tick(ts(0)); len(trans) != 0 {
		t.Fatalf("clean tick produced %+v", trans)
	}
	fn.report.Store(&forensics.Report{N: 4, F: 1,
		Proofs: []*forensics.Proof{{Proof: forensics.ProofDivergentResult, Culprit: 3}},
		Scores: []forensics.Score{{Node: 3, Suspicion: 0.9, Accused: true}}})
	fn.commitSlots(2)
	trans := m.Tick(ts(1))
	var fired bool
	for _, a := range trans {
		if a.Rule == "byzantine_proof" && a.State == "firing" && a.Scope == "cluster" {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("byzantine_proof did not fire on the first proof-bearing scrape: %+v", trans)
	}
	sig := m.Signals()
	if sig.ForensicsProofs != 1 || sig.MaxSuspicion < 0.9 {
		t.Fatalf("signals = proofs %g suspicion %g", sig.ForensicsProofs, sig.MaxSuspicion)
	}
}

func TestMonitorRunLoopAndOnAlert(t *testing.T) {
	fn := newFakeNode(t, 0, 1)
	got := make(chan Alert, 16)
	m := New(Config{Targets: []Target{fn.target()}, Interval: 10 * time.Millisecond,
		Window: 2, OnAlert: func(a Alert) { got <- a }})
	fn.srv.Close() // dead from the start: unreachable must fire via Run
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan struct{})
	go func() { m.Run(ctx); close(done) }()
	select {
	case a := <-got:
		if a.Rule != "node_unreachable" {
			t.Fatalf("first alert = %+v", a)
		}
	case <-done:
		t.Fatal("Run exited before alerting")
	}
	cancel()
	<-done
	if m.Ticks() < 1 {
		t.Fatalf("ticks = %d, want >= 1", m.Ticks())
	}
}

func TestDashboardRendersSignalsAndAlerts(t *testing.T) {
	fn := newFakeNode(t, 0, 1)
	m := newTestMonitor(t, 2, fn)
	fn.commitSlots(3)
	m.Tick(ts(0))
	fn.srv.Close()
	m.Tick(ts(1))
	m.Tick(ts(2)) // second failure: unreachable fires

	var b strings.Builder
	RenderDashboard(&b, m.Signals(), m.Firing(), false)
	out := b.String()
	for _, want := range []string{"bftmon cluster view", "r0", "unreachable", "node_unreachable"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dashboard missing %q:\n%s", want, out)
		}
	}
	var log strings.Builder
	RenderAlertLog(&log, m.Alerts())
	if !strings.Contains(log.String(), "node_unreachable firing") {
		t.Fatalf("alert log missing transition:\n%s", log.String())
	}
	if frame := WatchFrame(m.Signals(), m.Firing()); !strings.Contains(frame, ansiClear) {
		t.Fatal("watch frame must clear the screen")
	}
}
