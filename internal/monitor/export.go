package monitor

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
)

// Aggregated cluster re-export: bftmon serves one /metrics endpoint
// carrying (a) its own derived signal gauges under the bftmon_ prefix
// and (b) every scraped family from every node, re-labelled with
// instance=<target>, so one Prometheus scrape covers the whole
// cluster — federation without a Prometheus server.

// WriteClusterProm renders the aggregated exposition. Caller holds no
// lock; the monitor's mutex is taken here.
func (m *Monitor) WriteClusterProm(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	sig := m.last
	if sig == nil {
		sig = &ClusterSignals{}
	}

	// Derived signal gauges first.
	type gaugeRow struct{ labels, val string }
	gauges := []struct {
		name, help string
		rows       []gaugeRow
	}{
		{"bftmon_up", "1 when the last scrape of this target succeeded.", nil},
		{"bftmon_node_commit_seq", "Highest committed slot reported by this target.", nil},
		{"bftmon_node_commit_rate", "Committed slots per second over the monitor window.", nil},
		{"bftmon_node_slot_lag", "Slots behind the cluster high-water mark.", nil},
		{"bftmon_node_view_change_rate", "View-change messages per second over the monitor window.", nil},
		{"bftmon_node_link_fault_rate", "Transport dial failures, drops and reconnects per second.", nil},
		{"bftmon_cluster_commit_rate", "Cluster slot throughput (high-water mark advance) per second.", nil},
		{"bftmon_cluster_latency_p50_microseconds", "Windowed cluster slot-latency median.", nil},
		{"bftmon_cluster_latency_p99_microseconds", "Windowed cluster slot-latency 99th percentile.", nil},
		{"bftmon_cluster_progress_stall", "1 when client demand flows but no slot commits.", nil},
		{"bftmon_cluster_forensics_proofs", "Misbehavior proofs held by any node's auditor.", nil},
		{"bftmon_alert_firing", "1 per currently-firing alert, labelled by rule and scope.", nil},
	}
	for _, n := range sig.Nodes {
		up := 0
		if n.Up {
			up = 1
		}
		lbl := fmt.Sprintf("{instance=%q}", n.Name)
		gauges[0].rows = append(gauges[0].rows, gaugeRow{lbl, fmt.Sprintf("%d", up)})
		gauges[1].rows = append(gauges[1].rows, gaugeRow{lbl, fmt.Sprintf("%d", int64(n.CommitSeq))})
		gauges[2].rows = append(gauges[2].rows, gaugeRow{lbl, fmt.Sprintf("%g", n.CommitRate)})
		gauges[3].rows = append(gauges[3].rows, gaugeRow{lbl, fmt.Sprintf("%d", int64(n.SlotLag))})
		gauges[4].rows = append(gauges[4].rows, gaugeRow{lbl, fmt.Sprintf("%g", n.ViewChangeRate)})
		gauges[5].rows = append(gauges[5].rows, gaugeRow{lbl, fmt.Sprintf("%g", n.LinkFaultRate)})
	}
	gauges[6].rows = []gaugeRow{{"", fmt.Sprintf("%g", sig.ClusterCommitRate)}}
	gauges[7].rows = []gaugeRow{{"", fmt.Sprintf("%g", sig.LatencyP50us)}}
	gauges[8].rows = []gaugeRow{{"", fmt.Sprintf("%g", sig.LatencyP99us)}}
	gauges[9].rows = []gaugeRow{{"", fmt.Sprintf("%g", sig.ProgressStall)}}
	gauges[10].rows = []gaugeRow{{"", fmt.Sprintf("%g", sig.ForensicsProofs)}}
	for _, a := range m.engine.Firing() {
		gauges[11].rows = append(gauges[11].rows,
			gaugeRow{fmt.Sprintf("{rule=%q,scope=%q}", a.Rule, a.Scope), "1"})
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", g.name, g.help, g.name); err != nil {
			return err
		}
		for _, r := range g.rows {
			if _, err := fmt.Fprintf(w, "%s%s %s\n", g.name, r.labels, r.val); err != nil {
				return err
			}
		}
	}

	// Raw re-export: the latest value of every stored series from every
	// node, instance-labelled. Families render contiguously (required by
	// the text format) and deterministically; TYPE is reconstructed from
	// the name shape the bftkit exporter uses.
	type series struct{ key, instance string }
	byFamily := make(map[string][]series)
	for _, ns := range m.nodes {
		for _, k := range ns.Store.Keys() {
			if strings.HasPrefix(k, "healthz:") {
				continue
			}
			fam := exportFamily(keyFamily(k))
			byFamily[fam] = append(byFamily[fam], series{key: k, instance: ns.Target.Name})
		}
	}
	fams := make([]string, 0, len(byFamily))
	for f := range byFamily {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	for _, fam := range fams {
		typ := "untyped"
		switch {
		case strings.HasSuffix(fam, "_total"):
			typ = "counter"
		case fam == "bftkit_build_info" || fam == "bftkit_node_start_time_seconds" || fam == "bftkit_forensics_suspicion":
			typ = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s Re-exported from the per-node scrape.\n# TYPE %s %s\n", fam, fam, typ); err != nil {
			return err
		}
		rows := byFamily[fam]
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].instance != rows[j].instance {
				return rows[i].instance < rows[j].instance
			}
			return rows[i].key < rows[j].key
		})
		for _, r := range rows {
			ns := m.nodeByName(r.instance)
			if ns == nil {
				continue
			}
			labels := exportLabels(r.key, r.instance)
			if _, err := fmt.Fprintf(w, "%s%s %g\n", keyFamily(r.key), labels, ns.Store.LastValue(r.key, 0)); err != nil {
				return err
			}
		}
	}
	return nil
}

// exportFamily maps a sample name to its family for re-export grouping:
// histogram _bucket/_sum/_count samples group under the bucket name so
// each instance's ladder renders contiguously.
func exportFamily(name string) string { return name }

// exportLabels rebuilds a label set string from a series key, adding
// the instance label.
func exportLabels(key, instance string) string {
	parts := strings.Split(key, "|")
	labels := []string{fmt.Sprintf("instance=%q", instance)}
	for _, seg := range parts[1:] {
		if k, v, ok := strings.Cut(seg, "="); ok {
			labels = append(labels, fmt.Sprintf("%s=%q", k, v))
		}
	}
	return "{" + strings.Join(labels, ",") + "}"
}

func (m *Monitor) nodeByName(name string) *NodeState {
	for _, ns := range m.nodes {
		if ns.Target.Name == name {
			return ns
		}
	}
	return nil
}

// Handler serves bftmon's own ops surface: the aggregated /metrics,
// /api/signals (latest snapshot, JSON), /api/alerts (transition log,
// JSON), and a plain-text dashboard at /.
func (m *Monitor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		m.WriteClusterProm(w)
	})
	mux.HandleFunc("/api/signals", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(m.Signals())
	})
	mux.HandleFunc("/api/alerts", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Firing []Alert `json:"firing"`
			Log    []Alert `json:"log"`
		}{m.Firing(), m.Alerts()})
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		RenderDashboard(w, m.Signals(), m.Firing(), false)
	})
	return mux
}
