package sim

import (
	"time"

	"bftkit/internal/obsv"
	"bftkit/internal/types"
)

// Handler receives delivered messages. Replicas, clients, and harness
// probes all implement it.
type Handler interface {
	Deliver(from types.NodeID, m types.Message)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from types.NodeID, m types.Message)

// Deliver implements Handler.
func (f HandlerFunc) Deliver(from types.NodeID, m types.Message) { f(from, m) }

// NetConfig models the partially synchronous network of the paper: after
// GST every message between correct nodes arrives within Delay+Jitter;
// before GST the adversary controls timing up to PreGSTMaxDelay and may
// drop messages.
type NetConfig struct {
	Delay  time.Duration // base one-way delay after GST
	Jitter time.Duration // uniform extra delay in [0, Jitter)
	// DropRate is the steady-state loss probability (unreliable links).
	DropRate float64
	// DuplicateRate is the probability a delivered message is delivered
	// twice (with fresh jitter). Protocol handlers must be idempotent.
	DuplicateRate float64
	// GST is the global stabilization time. Zero means the network is
	// stable from the start.
	GST time.Duration
	// PreGSTMaxDelay bounds adversarial delay before GST (delays are
	// drawn uniformly in [Delay, PreGSTMaxDelay]).
	PreGSTMaxDelay time.Duration
	// PreGSTDropRate is the loss probability before GST.
	PreGSTDropRate float64
	// SendCostPerMsg and SendCostPerKB model each node's finite egress
	// capacity: sends are serialized at the sender, each occupying the
	// link for PerMsg + size×PerKB. Zero disables the model (infinite
	// bandwidth). This is what makes the leader a bottleneck — the
	// load-balancing and throughput claims of the paper (Q2, §1)
	// depend on it.
	SendCostPerMsg time.Duration
	SendCostPerKB  time.Duration
}

// DefaultLAN is a 1ms datacenter-style network.
func DefaultLAN() NetConfig {
	return NetConfig{Delay: time.Millisecond, Jitter: 200 * time.Microsecond}
}

// DefaultWAN is a 50ms geo-replicated network.
func DefaultWAN() NetConfig {
	return NetConfig{Delay: 50 * time.Millisecond, Jitter: 5 * time.Millisecond}
}

// Action is an interceptor's verdict on one in-flight message.
type Action struct {
	Drop       bool
	ExtraDelay time.Duration
	Replace    types.Message // if non-nil, substitute the payload
}

// Interceptor lets experiments model a strong network adversary (message
// delay attacks, targeted drops, front-running reordering).
type Interceptor interface {
	OnSend(from, to types.NodeID, m types.Message) Action
}

// NodeStats aggregates one node's traffic, used by the load-balancing and
// message-complexity experiments (X3, X9).
type NodeStats struct {
	MsgsSent  int64
	BytesSent int64
	MsgsRecv  int64
	BytesRecv int64
}

// Network routes messages between registered handlers with configurable
// delay, loss, partitions, crashes, and adversarial interception.
type Network struct {
	sched *Scheduler
	cfg   NetConfig

	nodes      map[types.NodeID]Handler
	crashed    map[types.NodeID]bool
	linkDelay  map[[2]types.NodeID]time.Duration
	partition  map[types.NodeID]int // group id; zero value = group 0
	interc     Interceptor
	partActive bool

	stats      map[types.NodeID]*NodeStats
	kindCount  map[string]int64
	kindBytes  map[string]int64
	egressFree map[types.NodeID]time.Duration
	delivered  int64
	dropped    int64
	inflight   int64
	tracer     *obsv.Tracer
	tap        func(at time.Duration, from, to types.NodeID, m types.Message)
}

// NewNetwork creates a network on the given scheduler.
func NewNetwork(sched *Scheduler, cfg NetConfig) *Network {
	return &Network{
		sched:      sched,
		cfg:        cfg,
		nodes:      make(map[types.NodeID]Handler),
		crashed:    make(map[types.NodeID]bool),
		linkDelay:  make(map[[2]types.NodeID]time.Duration),
		partition:  make(map[types.NodeID]int),
		stats:      make(map[types.NodeID]*NodeStats),
		kindCount:  make(map[string]int64),
		kindBytes:  make(map[string]int64),
		egressFree: make(map[types.NodeID]time.Duration),
	}
}

// Register attaches a handler under the given ID.
func (n *Network) Register(id types.NodeID, h Handler) { n.nodes[id] = h }

// SetInterceptor installs a network adversary. Pass nil to remove.
func (n *Network) SetInterceptor(i Interceptor) { n.interc = i }

// SetTracer attaches the observability sink; every send and delivery is
// reported with its accounted wire size. Pass nil to detach.
func (n *Network) SetTracer(t *obsv.Tracer) { n.tracer = t }

// SetTap installs a delivery tap: fn observes every delivered message
// (after crash/partition filtering, immediately before the handler) no
// matter how handlers are later re-registered — the attachment point
// the forensics auditor uses. Pass nil to detach.
func (n *Network) SetTap(fn func(at time.Duration, from, to types.NodeID, m types.Message)) {
	n.tap = fn
}

// Crash makes a node silent: it neither sends nor receives.
func (n *Network) Crash(id types.NodeID) { n.crashed[id] = true }

// Restart lets a crashed node communicate again.
func (n *Network) Restart(id types.NodeID) { delete(n.crashed, id) }

// Crashed reports whether id is currently crashed.
func (n *Network) Crashed(id types.NodeID) bool { return n.crashed[id] }

// SetLinkDelay overrides the base delay on the directed link from→to.
func (n *Network) SetLinkDelay(from, to types.NodeID, d time.Duration) {
	n.linkDelay[[2]types.NodeID{from, to}] = d
}

// ClearLinkDelay removes the override on the directed link from→to,
// returning it to the configured base delay.
func (n *Network) ClearLinkDelay(from, to types.NodeID) {
	delete(n.linkDelay, [2]types.NodeID{from, to})
}

// Partition splits nodes into isolated groups. Nodes not mentioned stay
// in group 0. Cross-group messages are dropped until Heal.
func (n *Network) Partition(groups ...[]types.NodeID) {
	n.partition = make(map[types.NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			n.partition[id] = gi + 1
		}
	}
	n.partActive = true
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.partition = make(map[types.NodeID]int)
	n.partActive = false
}

// Stats returns the traffic counters for one node (allocating if needed).
func (n *Network) Stats(id types.NodeID) *NodeStats {
	st := n.stats[id]
	if st == nil {
		st = &NodeStats{}
		n.stats[id] = st
	}
	return st
}

// KindCounts returns per-message-kind delivery counts and bytes.
func (n *Network) KindCounts() (map[string]int64, map[string]int64) {
	return n.kindCount, n.kindBytes
}

// Totals returns (delivered, dropped) message counts.
func (n *Network) Totals() (delivered, dropped int64) { return n.delivered, n.dropped }

// ResetStats zeroes all traffic counters (used between warmup and the
// measured window of an experiment).
func (n *Network) ResetStats() {
	n.stats = make(map[types.NodeID]*NodeStats)
	n.kindCount = make(map[string]int64)
	n.kindBytes = make(map[string]int64)
	n.delivered, n.dropped = 0, 0
}

// Sizer lets a message define its own accounted wire size; messages
// carrying certificates use it so the threshold-signature size model
// holds. Messages without it are measured through the same gob encoding
// the TCP transport uses (obsv.SizeOf), so simulator byte accounting
// matches real wire bytes.
type Sizer = obsv.Sizer

// SizeOf returns the accounted wire size of a message.
func SizeOf(m types.Message) int { return obsv.SizeOf(m) }

// Send routes one message. Delivery is scheduled on the virtual clock
// according to the network model; the call itself never blocks.
func (n *Network) Send(from, to types.NodeID, m types.Message) {
	if n.crashed[from] || n.crashed[to] {
		n.dropped++
		return
	}
	if n.partActive && n.partition[from] != n.partition[to] {
		n.dropped++
		return
	}
	if n.interc != nil {
		act := n.interc.OnSend(from, to, m)
		if act.Drop {
			n.dropped++
			return
		}
		if act.Replace != nil {
			m = act.Replace
		}
		n.deliver(from, to, m, act.ExtraDelay)
		return
	}
	n.deliver(from, to, m, 0)
}

func (n *Network) deliver(from, to types.NodeID, m types.Message, extra time.Duration) {
	rng := n.sched.Rand()
	now := n.sched.Now()

	drop := n.cfg.DropRate
	base := n.cfg.Delay
	// The per-link override replaces the base delay, but the pre-GST
	// adversary still acts on top of it: an explicitly slow link does
	// not become synchronous just because GST has not passed.
	if d, ok := n.linkDelay[[2]types.NodeID{from, to}]; ok {
		base = d
	}
	if now < n.cfg.GST {
		drop = n.cfg.PreGSTDropRate
		if n.cfg.PreGSTMaxDelay > base {
			base += time.Duration(rng.Int63n(int64(n.cfg.PreGSTMaxDelay - base + 1)))
		}
	}
	if drop > 0 && rng.Float64() < drop {
		n.dropped++
		return
	}
	delay := base + extra
	if n.cfg.Jitter > 0 {
		delay += time.Duration(rng.Int63n(int64(n.cfg.Jitter)))
	}

	size := SizeOf(m)
	dup := time.Duration(-1)
	if n.cfg.DuplicateRate > 0 && rng.Float64() < n.cfg.DuplicateRate {
		dup = time.Duration(rng.Int63n(int64(2 * (base + time.Millisecond))))
	}

	// Egress serialization: the sender's link is busy until previous
	// sends have drained.
	if n.cfg.SendCostPerMsg > 0 || n.cfg.SendCostPerKB > 0 {
		cost := n.cfg.SendCostPerMsg + n.cfg.SendCostPerKB*time.Duration(size)/1024
		ready := n.egressFree[from]
		if ready < now {
			ready = now
		}
		ready += cost
		n.egressFree[from] = ready
		delay += ready - now
	}
	ss := n.Stats(from)
	ss.MsgsSent++
	ss.BytesSent += int64(size)
	kind := m.Kind()
	n.kindCount[kind]++
	n.kindBytes[kind] += int64(size)
	if n.tracer != nil {
		n.tracer.MsgSent(now, from, to, m, size)
		n.tracer.ObserveQueueDepth(int(n.inflight))
	}

	deliverAt := func(d time.Duration) {
		n.inflight++
		n.sched.After(d, func() {
			n.inflight--
			if n.crashed[to] || (n.partActive && n.partition[from] != n.partition[to]) {
				n.dropped++
				return
			}
			h := n.nodes[to]
			if h == nil {
				n.dropped++
				return
			}
			rs := n.Stats(to)
			rs.MsgsRecv++
			rs.BytesRecv += int64(size)
			n.delivered++
			n.tracer.MsgDelivered(n.sched.Now(), from, to, m, size)
			if n.tap != nil {
				n.tap(n.sched.Now(), from, to, m)
			}
			h.Deliver(from, m)
		})
	}
	// The original is scheduled first; the scheduler breaks same-instant
	// ties in scheduling order, so a duplicate (dup >= 0) can never
	// arrive before its original even when dup draws zero.
	deliverAt(delay)
	if dup >= 0 {
		deliverAt(delay + dup)
	}
}
