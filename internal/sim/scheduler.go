// Package sim is the deterministic discrete-event substrate every
// experiment in this repository runs on. It provides a virtual clock with
// an event queue (Scheduler) and a partially synchronous network model
// (Network) matching the paper's system assumptions: unreliable links
// that may drop or delay messages, an unknown global stabilization time
// (GST) after which messages between correct replicas arrive within a
// known bound, and a strong adversary that can intercept traffic but not
// break cryptography.
//
// Determinism rule: protocol code never reads the wall clock or the
// global math/rand source; all time comes from Scheduler.Now and all
// randomness from the seeded Scheduler.Rand. Two runs with the same seed
// and configuration produce byte-identical histories.
package sim

import (
	"container/heap"
	"math/rand"
	"time"
)

// event is one scheduled callback. seq breaks ties so same-instant events
// fire in scheduling order, which keeps runs deterministic.
type event struct {
	at        time.Duration
	seq       uint64
	fn        func()
	cancelled bool
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; old[n-1] = nil; *h = old[:n-1]; return e }

// Scheduler is a single-threaded virtual-time event loop.
type Scheduler struct {
	now time.Duration
	seq uint64
	pq  eventHeap
	rng *rand.Rand
}

// NewScheduler returns a scheduler whose randomness is derived from seed.
func NewScheduler(seed int64) *Scheduler {
	return &Scheduler{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time (elapsed since run start).
func (s *Scheduler) Now() time.Duration { return s.now }

// Rand returns the seeded random source for this run.
func (s *Scheduler) Rand() *rand.Rand { return s.rng }

// Timer handles cancellation of a scheduled event.
type Timer struct{ ev *event }

// Stop cancels the timer; the callback will not fire.
func (t *Timer) Stop() {
	if t != nil && t.ev != nil {
		t.ev.cancelled = true
	}
}

// At schedules fn at absolute virtual time t (clamped to now).
func (s *Scheduler) At(t time.Duration, fn func()) *Timer {
	if t < s.now {
		t = s.now
	}
	s.seq++
	ev := &event{at: t, seq: s.seq, fn: fn}
	heap.Push(&s.pq, ev)
	return &Timer{ev: ev}
}

// After schedules fn d from now.
func (s *Scheduler) After(d time.Duration, fn func()) *Timer {
	return s.At(s.now+d, fn)
}

// Step executes the next pending event, advancing the clock to it.
// It returns false when the queue is empty.
func (s *Scheduler) Step() bool {
	for s.pq.Len() > 0 {
		ev := heap.Pop(&s.pq).(*event)
		if ev.cancelled {
			continue
		}
		s.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run executes events until virtual time exceeds `until` or the queue
// drains. The clock is left at min(until, time of last work).
func (s *Scheduler) Run(until time.Duration) {
	for s.pq.Len() > 0 {
		// Peek without popping: heap root is the earliest event.
		if s.pq[0].at > until {
			break
		}
		s.Step()
	}
	if s.now < until {
		s.now = until
	}
}

// RunUntilIdle executes all pending events, up to a safety cap on virtual
// time so a livelocked protocol cannot spin a test forever.
func (s *Scheduler) RunUntilIdle(cap time.Duration) {
	for s.pq.Len() > 0 && (s.pq[0].at <= cap) {
		s.Step()
	}
}

// Pending returns the number of queued (uncancelled) events.
func (s *Scheduler) Pending() int {
	n := 0
	for _, ev := range s.pq {
		if !ev.cancelled {
			n++
		}
	}
	return n
}
