package sim

import (
	"testing"
	"time"

	"bftkit/internal/types"
)

type probeMsg struct{ N int }

func (*probeMsg) Kind() string { return "PROBE" }

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run(10 * time.Millisecond)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSchedulerTieBreakBySchedulingOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.RunUntilIdle(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	tm.Stop()
	s.RunUntilIdle(time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.After(5*time.Millisecond, func() { fired = true })
	s.Run(4 * time.Millisecond)
	if fired {
		t.Fatal("event beyond the boundary fired")
	}
	s.Run(6 * time.Millisecond)
	if !fired {
		t.Fatal("event within the boundary missed")
	}
}

func TestNetworkDelivery(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond})
	var got []types.Message
	n.Register(1, HandlerFunc(func(from types.NodeID, m types.Message) {
		got = append(got, m)
	}))
	n.Send(0, 1, &probeMsg{N: 7})
	s.RunUntilIdle(time.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	d, drop := n.Totals()
	if d != 1 || drop != 0 {
		t.Fatalf("totals %d/%d", d, drop)
	}
}

func TestCrashSilencesNode(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond})
	delivered := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { delivered++ }))
	n.Crash(1)
	n.Send(0, 1, &probeMsg{})
	n.Crash(0)
	n.Send(0, 2, &probeMsg{})
	s.RunUntilIdle(time.Second)
	if delivered != 0 {
		t.Fatal("crashed node received traffic")
	}
	if _, dropped := n.Totals(); dropped != 2 {
		t.Fatalf("dropped %d, want 2", dropped)
	}
	n.Restart(1)
	n.Send(2, 1, &probeMsg{})
	s.RunUntilIdle(time.Second)
	if delivered != 1 {
		t.Fatal("restarted node unreachable")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond})
	delivered := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { delivered++ }))
	n.Partition([]types.NodeID{0}, []types.NodeID{1})
	n.Send(0, 1, &probeMsg{})
	s.RunUntilIdle(time.Second)
	if delivered != 0 {
		t.Fatal("message crossed the partition")
	}
	n.Heal()
	n.Send(0, 1, &probeMsg{})
	s.RunUntilIdle(2 * time.Second)
	if delivered != 1 {
		t.Fatal("healed partition still blocks")
	}
}

func TestDropRate(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond, DropRate: 0.5})
	delivered := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { delivered++ }))
	for i := 0; i < 1000; i++ {
		n.Send(0, 1, &probeMsg{N: i})
	}
	s.RunUntilIdle(time.Minute)
	if delivered < 350 || delivered > 650 {
		t.Fatalf("drop rate off: %d of 1000 delivered", delivered)
	}
}

func TestPreGSTBehavior(t *testing.T) {
	cfg := NetConfig{
		Delay: time.Millisecond, GST: time.Second,
		PreGSTMaxDelay: 500 * time.Millisecond, PreGSTDropRate: 1.0,
	}
	s := NewScheduler(1)
	n := NewNetwork(s, cfg)
	delivered := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { delivered++ }))
	n.Send(0, 1, &probeMsg{}) // before GST: dropped (rate 1.0)
	s.Run(2 * time.Second)
	if delivered != 0 {
		t.Fatal("pre-GST message survived a 100% drop rate")
	}
	n.Send(0, 1, &probeMsg{}) // after GST: normal
	s.RunUntilIdle(3 * time.Second)
	if delivered != 1 {
		t.Fatal("post-GST message lost")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []int {
		s := NewScheduler(99)
		n := NewNetwork(s, NetConfig{Delay: time.Millisecond, Jitter: time.Millisecond, DropRate: 0.2})
		var got []int
		n.Register(1, HandlerFunc(func(_ types.NodeID, m types.Message) {
			got = append(got, m.(*probeMsg).N)
		}))
		for i := 0; i < 100; i++ {
			n.Send(0, 1, &probeMsg{N: i})
		}
		s.RunUntilIdle(time.Minute)
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic delivery order")
		}
	}
}

type sizedMsg struct{}

func (*sizedMsg) Kind() string     { return "SIZED" }
func (*sizedMsg) EncodedSize() int { return 12345 }

func TestSizeAccounting(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond})
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) {}))
	n.Send(0, 1, &sizedMsg{})
	s.RunUntilIdle(time.Second)
	if st := n.Stats(0); st.BytesSent != 12345 {
		t.Fatalf("Sizer override ignored: %d bytes", st.BytesSent)
	}
	_, bytes := n.KindCounts()
	if bytes["SIZED"] != 12345 {
		t.Fatalf("kind bytes %v", bytes)
	}
}

type interceptDrop struct{}

func (interceptDrop) OnSend(from, to types.NodeID, m types.Message) Action {
	if to == 1 {
		return Action{Drop: true}
	}
	return Action{}
}

func TestInterceptor(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond})
	delivered := map[types.NodeID]int{}
	for _, id := range []types.NodeID{1, 2} {
		id := id
		n.Register(id, HandlerFunc(func(types.NodeID, types.Message) { delivered[id]++ }))
	}
	n.SetInterceptor(interceptDrop{})
	n.Send(0, 1, &probeMsg{})
	n.Send(0, 2, &probeMsg{})
	s.RunUntilIdle(time.Second)
	if delivered[1] != 0 || delivered[2] != 1 {
		t.Fatalf("interceptor misapplied: %v", delivered)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond, DuplicateRate: 1.0})
	got := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { got++ }))
	n.Send(0, 1, &probeMsg{})
	s.RunUntilIdle(time.Second)
	if got != 2 {
		t.Fatalf("DuplicateRate=1 delivered %d copies, want 2", got)
	}
}

func TestDuplicateStatsSymmetry(t *testing.T) {
	// A duplicated message is one send and two deliveries; sender and
	// receiver counters must agree with the delivered total.
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond, DuplicateRate: 1.0})
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) {}))
	n.Send(0, 1, &probeMsg{})
	s.RunUntilIdle(time.Second)

	ss, rs := n.Stats(0), n.Stats(1)
	if ss.MsgsSent != 1 {
		t.Fatalf("MsgsSent = %d, want 1", ss.MsgsSent)
	}
	if rs.MsgsRecv != 2 {
		t.Fatalf("MsgsRecv = %d, want 2 (duplicate must be counted at the receiver)", rs.MsgsRecv)
	}
	if rs.BytesRecv != 2*ss.BytesSent {
		t.Fatalf("BytesRecv = %d, want 2×BytesSent = %d", rs.BytesRecv, 2*ss.BytesSent)
	}
	if delivered, dropped := n.Totals(); delivered != 2 || dropped != 0 {
		t.Fatalf("Totals = (%d, %d), want (2, 0)", delivered, dropped)
	}
}

func TestDuplicateNeverBeatsOriginal(t *testing.T) {
	// Egress serialization delays the original copy; the duplicate must
	// be held to at least the same schedule instead of sneaking out on
	// the pre-serialization delay.
	s := NewScheduler(1)
	cost := 10 * time.Millisecond
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond, DuplicateRate: 1.0, SendCostPerMsg: cost})
	first := make(map[int]time.Duration)
	n.Register(1, HandlerFunc(func(_ types.NodeID, m types.Message) {
		k := m.(*probeMsg).N
		if _, seen := first[k]; !seen {
			first[k] = s.Now()
		}
	}))
	const msgs = 4
	for i := 0; i < msgs; i++ {
		n.Send(0, 1, &probeMsg{N: i})
	}
	s.RunUntilIdle(time.Second)
	for i := 0; i < msgs; i++ {
		// Message i leaves the sender only after i+1 serialization slots.
		if min := time.Duration(i+1) * cost; first[i] < min {
			t.Fatalf("msg %d first arrived at %v, before its egress-serialized schedule %v (duplicate beat the original)", i, first[i], min)
		}
	}
}

func TestDuplicateRespectsMidFlightPartition(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: 10 * time.Millisecond, DuplicateRate: 1.0})
	got := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { got++ }))
	n.Send(0, 1, &probeMsg{})
	s.After(time.Millisecond, func() { n.Partition([]types.NodeID{0}, []types.NodeID{1}) })
	s.RunUntilIdle(time.Second)
	if got != 0 {
		t.Fatalf("partition imposed mid-flight, yet %d copies were delivered", got)
	}
	if delivered, dropped := n.Totals(); delivered != 0 || dropped != 2 {
		t.Fatalf("Totals = (%d, %d), want both copies dropped (0, 2)", delivered, dropped)
	}
}

func TestDuplicateRespectsMidFlightCrash(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: 10 * time.Millisecond, DuplicateRate: 1.0})
	got := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { got++ }))
	n.Send(0, 1, &probeMsg{})
	s.After(time.Millisecond, func() { n.Crash(1) })
	s.RunUntilIdle(time.Second)
	if got != 0 {
		t.Fatalf("receiver crashed mid-flight, yet %d copies were delivered", got)
	}
	if delivered, dropped := n.Totals(); delivered != 0 || dropped != 2 {
		t.Fatalf("Totals = (%d, %d), want both copies dropped (0, 2)", delivered, dropped)
	}
}

func TestLinkDelayStillAdversarialPreGST(t *testing.T) {
	// A per-link override replaces the base delay but must not disable
	// the pre-GST adversary: before GST an explicitly slow link can be
	// slowed further, up to PreGSTMaxDelay.
	link := 200 * time.Millisecond
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{
		Delay:          time.Millisecond,
		GST:            10 * time.Second,
		PreGSTMaxDelay: 500 * time.Millisecond,
	})
	n.SetLinkDelay(0, 1, link)
	var arrivals []time.Duration
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { arrivals = append(arrivals, s.Now()) }))
	const msgs = 10
	for i := 0; i < msgs; i++ {
		n.Send(0, 1, &probeMsg{N: i})
	}
	s.RunUntilIdle(20 * time.Second)
	if len(arrivals) != msgs {
		t.Fatalf("delivered %d of %d", len(arrivals), msgs)
	}
	max := time.Duration(0)
	for _, a := range arrivals {
		if a < link {
			t.Fatalf("arrival at %v is below the link override %v", a, link)
		}
		if a > max {
			max = a
		}
	}
	if max <= link {
		t.Fatalf("all %d pre-GST arrivals at exactly the override %v — adversarial delay was discarded", msgs, link)
	}
}
