package sim

import (
	"testing"
	"time"

	"bftkit/internal/types"
)

type probeMsg struct{ N int }

func (*probeMsg) Kind() string { return "PROBE" }

func TestSchedulerOrdering(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	s.After(3*time.Millisecond, func() { got = append(got, 3) })
	s.After(1*time.Millisecond, func() { got = append(got, 1) })
	s.After(2*time.Millisecond, func() { got = append(got, 2) })
	s.Run(10 * time.Millisecond)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if s.Now() != 10*time.Millisecond {
		t.Fatalf("clock = %v", s.Now())
	}
}

func TestSchedulerTieBreakBySchedulingOrder(t *testing.T) {
	s := NewScheduler(1)
	var got []int
	for i := 0; i < 5; i++ {
		i := i
		s.After(time.Millisecond, func() { got = append(got, i) })
	}
	s.RunUntilIdle(time.Second)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: %v", got)
		}
	}
}

func TestTimerCancel(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	tm := s.After(time.Millisecond, func() { fired = true })
	tm.Stop()
	s.RunUntilIdle(time.Second)
	if fired {
		t.Fatal("cancelled timer fired")
	}
}

func TestRunStopsAtBoundary(t *testing.T) {
	s := NewScheduler(1)
	fired := false
	s.After(5*time.Millisecond, func() { fired = true })
	s.Run(4 * time.Millisecond)
	if fired {
		t.Fatal("event beyond the boundary fired")
	}
	s.Run(6 * time.Millisecond)
	if !fired {
		t.Fatal("event within the boundary missed")
	}
}

func TestNetworkDelivery(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond})
	var got []types.Message
	n.Register(1, HandlerFunc(func(from types.NodeID, m types.Message) {
		got = append(got, m)
	}))
	n.Send(0, 1, &probeMsg{N: 7})
	s.RunUntilIdle(time.Second)
	if len(got) != 1 {
		t.Fatalf("delivered %d", len(got))
	}
	d, drop := n.Totals()
	if d != 1 || drop != 0 {
		t.Fatalf("totals %d/%d", d, drop)
	}
}

func TestCrashSilencesNode(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond})
	delivered := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { delivered++ }))
	n.Crash(1)
	n.Send(0, 1, &probeMsg{})
	n.Crash(0)
	n.Send(0, 2, &probeMsg{})
	s.RunUntilIdle(time.Second)
	if delivered != 0 {
		t.Fatal("crashed node received traffic")
	}
	if _, dropped := n.Totals(); dropped != 2 {
		t.Fatalf("dropped %d, want 2", dropped)
	}
	n.Restart(1)
	n.Send(2, 1, &probeMsg{})
	s.RunUntilIdle(time.Second)
	if delivered != 1 {
		t.Fatal("restarted node unreachable")
	}
}

func TestPartitionAndHeal(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond})
	delivered := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { delivered++ }))
	n.Partition([]types.NodeID{0}, []types.NodeID{1})
	n.Send(0, 1, &probeMsg{})
	s.RunUntilIdle(time.Second)
	if delivered != 0 {
		t.Fatal("message crossed the partition")
	}
	n.Heal()
	n.Send(0, 1, &probeMsg{})
	s.RunUntilIdle(2 * time.Second)
	if delivered != 1 {
		t.Fatal("healed partition still blocks")
	}
}

func TestDropRate(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond, DropRate: 0.5})
	delivered := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { delivered++ }))
	for i := 0; i < 1000; i++ {
		n.Send(0, 1, &probeMsg{N: i})
	}
	s.RunUntilIdle(time.Minute)
	if delivered < 350 || delivered > 650 {
		t.Fatalf("drop rate off: %d of 1000 delivered", delivered)
	}
}

func TestPreGSTBehavior(t *testing.T) {
	cfg := NetConfig{
		Delay: time.Millisecond, GST: time.Second,
		PreGSTMaxDelay: 500 * time.Millisecond, PreGSTDropRate: 1.0,
	}
	s := NewScheduler(1)
	n := NewNetwork(s, cfg)
	delivered := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { delivered++ }))
	n.Send(0, 1, &probeMsg{}) // before GST: dropped (rate 1.0)
	s.Run(2 * time.Second)
	if delivered != 0 {
		t.Fatal("pre-GST message survived a 100% drop rate")
	}
	n.Send(0, 1, &probeMsg{}) // after GST: normal
	s.RunUntilIdle(3 * time.Second)
	if delivered != 1 {
		t.Fatal("post-GST message lost")
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() []int {
		s := NewScheduler(99)
		n := NewNetwork(s, NetConfig{Delay: time.Millisecond, Jitter: time.Millisecond, DropRate: 0.2})
		var got []int
		n.Register(1, HandlerFunc(func(_ types.NodeID, m types.Message) {
			got = append(got, m.(*probeMsg).N)
		}))
		for i := 0; i < 100; i++ {
			n.Send(0, 1, &probeMsg{N: i})
		}
		s.RunUntilIdle(time.Minute)
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("non-deterministic delivery counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic delivery order")
		}
	}
}

type sizedMsg struct{}

func (*sizedMsg) Kind() string     { return "SIZED" }
func (*sizedMsg) EncodedSize() int { return 12345 }

func TestSizeAccounting(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond})
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) {}))
	n.Send(0, 1, &sizedMsg{})
	s.RunUntilIdle(time.Second)
	if st := n.Stats(0); st.BytesSent != 12345 {
		t.Fatalf("Sizer override ignored: %d bytes", st.BytesSent)
	}
	_, bytes := n.KindCounts()
	if bytes["SIZED"] != 12345 {
		t.Fatalf("kind bytes %v", bytes)
	}
}

type interceptDrop struct{}

func (interceptDrop) OnSend(from, to types.NodeID, m types.Message) Action {
	if to == 1 {
		return Action{Drop: true}
	}
	return Action{}
}

func TestInterceptor(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond})
	delivered := map[types.NodeID]int{}
	for _, id := range []types.NodeID{1, 2} {
		id := id
		n.Register(id, HandlerFunc(func(types.NodeID, types.Message) { delivered[id]++ }))
	}
	n.SetInterceptor(interceptDrop{})
	n.Send(0, 1, &probeMsg{})
	n.Send(0, 2, &probeMsg{})
	s.RunUntilIdle(time.Second)
	if delivered[1] != 0 || delivered[2] != 1 {
		t.Fatalf("interceptor misapplied: %v", delivered)
	}
}

func TestDuplicateDelivery(t *testing.T) {
	s := NewScheduler(1)
	n := NewNetwork(s, NetConfig{Delay: time.Millisecond, DuplicateRate: 1.0})
	got := 0
	n.Register(1, HandlerFunc(func(types.NodeID, types.Message) { got++ }))
	n.Send(0, 1, &probeMsg{})
	s.RunUntilIdle(time.Second)
	if got != 2 {
		t.Fatalf("DuplicateRate=1 delivered %d copies, want 2", got)
	}
}
