package ledger

import (
	"testing"

	"bftkit/internal/types"
)

func req(seq uint64) *types.Request {
	return &types.Request{Client: types.ClientIDBase, ClientSeq: seq, Op: []byte{byte(seq)}}
}

func entry(seq types.SeqNum) *Entry {
	return &Entry{Seq: seq, Batch: types.NewBatch(req(uint64(seq)))}
}

func TestCommitAndExecuteInOrder(t *testing.T) {
	l := New()
	// Out-of-order commits park until the gap fills.
	if fresh, err := l.Commit(entry(2)); err != nil || !fresh {
		t.Fatalf("commit 2: %v %v", fresh, err)
	}
	if l.NextExecutable() != nil {
		t.Fatal("seq 2 must not be executable before seq 1")
	}
	if _, err := l.Commit(entry(1)); err != nil {
		t.Fatal(err)
	}
	if e := l.NextExecutable(); e == nil || e.Seq != 1 {
		t.Fatal("seq 1 must be executable")
	}
	if err := l.MarkExecuted(1); err != nil {
		t.Fatal(err)
	}
	if e := l.NextExecutable(); e == nil || e.Seq != 2 {
		t.Fatal("seq 2 must follow")
	}
	if err := l.MarkExecuted(3); err == nil {
		t.Fatal("out-of-order execution accepted")
	}
}

func TestDuplicateAndConflictingCommits(t *testing.T) {
	l := New()
	e := entry(1)
	if fresh, _ := l.Commit(e); !fresh {
		t.Fatal("first commit must be fresh")
	}
	if fresh, err := l.Commit(e); fresh || err != nil {
		t.Fatal("identical recommit must be a silent no-op")
	}
	conflicting := &Entry{Seq: 1, Batch: types.NewBatch(req(99))}
	if _, err := l.Commit(conflicting); err == nil {
		t.Fatal("conflicting commit must be detected — this is the safety tripwire")
	}
}

func TestCheckpointGC(t *testing.T) {
	l := New()
	for s := types.SeqNum(1); s <= 10; s++ {
		l.Commit(entry(s))
		l.MarkExecuted(s)
	}
	collected := l.SetStable(&Checkpoint{Seq: 5})
	if collected != 5 {
		t.Fatalf("collected %d entries, want 5", collected)
	}
	if l.LowWater() != 5 {
		t.Fatalf("low water %d", l.LowWater())
	}
	// Commits at or below the low-water mark are silently dropped.
	if fresh, err := l.Commit(entry(3)); fresh || err != nil {
		t.Fatal("stale commit must be dropped")
	}
	// A stale checkpoint must not regress the mark.
	if l.SetStable(&Checkpoint{Seq: 2}) != 0 {
		t.Fatal("stale checkpoint collected entries")
	}
}

func TestFastforward(t *testing.T) {
	l := New()
	l.Commit(entry(1))
	l.MarkExecuted(1)
	l.Commit(entry(9))
	l.Fastforward(8)
	if l.LastExecuted() != 8 || l.LowWater() != 8 {
		t.Fatalf("cursors %d/%d", l.LastExecuted(), l.LowWater())
	}
	if e := l.NextExecutable(); e == nil || e.Seq != 9 {
		t.Fatal("retained entry above the snapshot must stay executable")
	}
	// Fastforward never goes backwards.
	l.Fastforward(3)
	if l.LastExecuted() != 8 {
		t.Fatal("fastforward regressed")
	}
}

func TestCommittedAboveSorted(t *testing.T) {
	l := New()
	for _, s := range []types.SeqNum{5, 2, 9, 3} {
		l.Commit(entry(s))
	}
	got := l.CommittedAbove(2)
	want := []types.SeqNum{3, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("got %d entries", len(got))
	}
	for i := range want {
		if got[i].Seq != want[i] {
			t.Fatalf("position %d: %d, want %d", i, got[i].Seq, want[i])
		}
	}
}

func TestOwnCheckpoints(t *testing.T) {
	l := New()
	l.AddOwnCheckpoint(&Checkpoint{Seq: 10, Snapshot: []byte("s10")})
	l.AddOwnCheckpoint(&Checkpoint{Seq: 20, Snapshot: []byte("s20")})
	if cp := l.LatestOwnCheckpoint(); cp == nil || cp.Seq != 20 {
		t.Fatal("latest checkpoint wrong")
	}
	if l.OwnCheckpoint(10) == nil {
		t.Fatal("lookup by seq failed")
	}
	l.SetStable(&Checkpoint{Seq: 20})
	if l.OwnCheckpoint(10) != nil {
		t.Fatal("stale own checkpoint survived GC")
	}
	if l.OwnCheckpoint(20) == nil {
		t.Fatal("the stable checkpoint itself must be retained")
	}
}
