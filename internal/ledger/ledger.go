// Package ledger maintains a replica's ordered history: committed batches
// with their commit proofs, the execution cursor, and quorum-certified
// checkpoints that garbage-collect the log and let trailing ("in-dark")
// replicas catch up via state transfer — dimension P4 of the paper.
package ledger

import (
	"errors"
	"fmt"
	"sort"

	"bftkit/internal/types"
)

// Entry is one committed slot in the history.
type Entry struct {
	Seq   types.SeqNum
	View  types.View
	Batch *types.Batch
	Proof *types.CommitProof
}

// Checkpoint certifies the state after executing everything up to Seq.
type Checkpoint struct {
	Seq       types.SeqNum
	StateHash types.Digest
	// Snapshot is the serialized application state; kept only on the
	// replica's own checkpoints so it can serve state transfer.
	Snapshot []byte
	// Voters are the replicas whose matching checkpoint messages made
	// this checkpoint stable (2f+1 for the classic protocols).
	Voters []types.NodeID
}

// ErrGapCommit reports an attempt to commit below the low-water mark.
var ErrGapCommit = errors.New("ledger: commit at or below low-water mark")

// Ledger is one replica's log. It is not goroutine-safe; the replica
// runtime serializes access.
type Ledger struct {
	entries map[types.SeqNum]*Entry

	lowWater     types.SeqNum // everything <= lowWater is garbage-collected
	lastExecuted types.SeqNum

	checkpoints map[types.SeqNum]*Checkpoint
	stable      *Checkpoint
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{
		entries:     make(map[types.SeqNum]*Entry),
		checkpoints: make(map[types.SeqNum]*Checkpoint),
	}
}

// LowWater returns the garbage-collection horizon.
func (l *Ledger) LowWater() types.SeqNum { return l.lowWater }

// LastExecuted returns the highest executed sequence number.
func (l *Ledger) LastExecuted() types.SeqNum { return l.lastExecuted }

// Len returns the number of retained (non-GC'd) entries.
func (l *Ledger) Len() int { return len(l.entries) }

// Commit records a committed batch at seq. It returns true if the entry
// is new, false if the slot was already committed (duplicate commits with
// a different digest indicate a protocol safety bug and panic loudly —
// the harness's safety audits depend on this never happening silently).
func (l *Ledger) Commit(e *Entry) (bool, error) {
	if e.Seq <= l.lowWater {
		// Already covered by a stable checkpoint; drop silently, this
		// is normal for late commit messages.
		return false, nil
	}
	if prev, ok := l.entries[e.Seq]; ok {
		if prev.Batch.Digest() != e.Batch.Digest() {
			return false, fmt.Errorf("ledger: conflicting commit at seq %d: %v vs %v",
				e.Seq, prev.Batch.Digest(), e.Batch.Digest())
		}
		return false, nil
	}
	l.entries[e.Seq] = e
	return true, nil
}

// Get returns the entry at seq, or nil.
func (l *Ledger) Get(seq types.SeqNum) *Entry { return l.entries[seq] }

// NextExecutable returns the entry at lastExecuted+1 if it has been
// committed, nil otherwise. The runtime loops on it to execute in order.
func (l *Ledger) NextExecutable() *Entry { return l.entries[l.lastExecuted+1] }

// MarkExecuted advances the execution cursor; seq must be exactly
// lastExecuted+1.
func (l *Ledger) MarkExecuted(seq types.SeqNum) error {
	if seq != l.lastExecuted+1 {
		return fmt.Errorf("ledger: out-of-order execution: %d after %d", seq, l.lastExecuted)
	}
	l.lastExecuted = seq
	return nil
}

// Fastforward jumps the cursors to seq after installing a state-transfer
// snapshot; entries at or below seq are discarded.
func (l *Ledger) Fastforward(seq types.SeqNum) {
	if seq <= l.lastExecuted {
		return
	}
	l.lastExecuted = seq
	if seq > l.lowWater {
		l.lowWater = seq
	}
	for s := range l.entries {
		if s <= seq {
			delete(l.entries, s)
		}
	}
}

// AddOwnCheckpoint records this replica's checkpoint (with snapshot) at
// seq so it can later serve state transfer.
func (l *Ledger) AddOwnCheckpoint(cp *Checkpoint) { l.checkpoints[cp.Seq] = cp }

// OwnCheckpoint returns this replica's checkpoint at seq, or nil.
func (l *Ledger) OwnCheckpoint(seq types.SeqNum) *Checkpoint { return l.checkpoints[seq] }

// LatestOwnCheckpoint returns the highest checkpoint recorded locally.
func (l *Ledger) LatestOwnCheckpoint() *Checkpoint {
	var best *Checkpoint
	for _, cp := range l.checkpoints {
		if best == nil || cp.Seq > best.Seq {
			best = cp
		}
	}
	return best
}

// SetStable installs a stable checkpoint: the log below it is
// garbage-collected and the low-water mark advances. Returns the number
// of entries collected.
func (l *Ledger) SetStable(cp *Checkpoint) int {
	if l.stable != nil && cp.Seq <= l.stable.Seq {
		return 0
	}
	l.stable = cp
	if cp.Seq > l.lowWater {
		l.lowWater = cp.Seq
	}
	collected := 0
	for s := range l.entries {
		if s <= cp.Seq {
			delete(l.entries, s)
			collected++
		}
	}
	for s := range l.checkpoints {
		if s < cp.Seq {
			delete(l.checkpoints, s)
		}
	}
	return collected
}

// Stable returns the current stable checkpoint, or nil.
func (l *Ledger) Stable() *Checkpoint { return l.stable }

// CommittedAbove returns all retained entries with seq > from, ascending.
// View changes use it to carry forward undecided-but-committed slots.
func (l *Ledger) CommittedAbove(from types.SeqNum) []*Entry {
	var out []*Entry
	for s, e := range l.entries {
		if s > from {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
