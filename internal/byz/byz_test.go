package byz_test

import (
	"fmt"
	"testing"
	"time"

	"bftkit/internal/byz"
	"bftkit/internal/crypto"
	"bftkit/internal/protocols/hotstuff"
	"bftkit/internal/protocols/zyzzyva"
	"bftkit/internal/types"
)

func req(i int) *types.Request {
	return &types.Request{Client: types.ClientIDBase, ClientSeq: uint64(i), Op: []byte(fmt.Sprintf("op%d", i))}
}

func TestForkBatchChangesDigestDeterministically(t *testing.T) {
	for _, reqs := range [][]*types.Request{
		{req(1)},
		{req(1), req(2), req(3)},
	} {
		b := types.NewBatch(reqs...)
		f1, f2 := byz.ForkBatch(b), byz.ForkBatch(b)
		if f1.Digest() == b.Digest() {
			t.Fatalf("fork of %d-request batch kept the digest", len(reqs))
		}
		if f1.Digest() != f2.Digest() {
			t.Fatal("fork is not deterministic")
		}
		// Same validly-signed requests, no fabricated ones.
		for _, r := range f1.Requests {
			found := false
			for _, orig := range reqs {
				if r == orig {
					found = true
				}
			}
			if !found {
				t.Fatal("fork introduced a request not in the original batch")
			}
		}
	}
}

func TestReplaceBatchTopLevel(t *testing.T) {
	auth := crypto.NewAuthority(7)
	signer := auth.Signer(0)
	b := types.NewBatch(req(1), req(2))
	orig := &zyzzyva.OrderReqMsg{View: 3, Seq: 9, Digest: b.Digest(), Batch: b, Sig: []byte("x")}
	orig.Sig = signer.Sign(orig.SigDigest())

	mm, ok := byz.ReplaceBatch(orig, byz.ForkBatch, signer.Sign)
	if !ok {
		t.Fatal("ReplaceBatch did not find the batch")
	}
	alt := mm.(*zyzzyva.OrderReqMsg)
	if alt == orig || alt.Batch == orig.Batch {
		t.Fatal("ReplaceBatch mutated the original message")
	}
	if orig.Digest != b.Digest() || orig.Batch.Digest() != b.Digest() {
		t.Fatal("original message changed")
	}
	if alt.Digest != alt.Batch.Digest() || alt.Digest == orig.Digest {
		t.Fatal("Digest field not recomputed for the forked batch")
	}
	if alt.View != orig.View || alt.Seq != orig.Seq {
		t.Fatal("unrelated fields changed")
	}
	// The equivocation must be validly signed — receivers can't tell it
	// from an honest proposal by authentication alone.
	if !auth.VerifierFor(1).VerifySig(0, alt.SigDigest(), alt.Sig) {
		t.Fatal("forked message is not validly re-signed")
	}
}

func TestReplaceBatchNested(t *testing.T) {
	auth := crypto.NewAuthority(7)
	signer := auth.Signer(0)
	b := types.NewBatch(req(1))
	blk := &hotstuff.Block{View: 1, Height: 4, Batch: b}
	orig := &hotstuff.ProposalMsg{Block: blk, Sig: signer.Sign((&hotstuff.ProposalMsg{Block: blk}).SigDigest())}

	mm, ok := byz.ReplaceBatch(orig, byz.ForkBatch, signer.Sign)
	if !ok {
		t.Fatal("ReplaceBatch did not find the nested batch")
	}
	alt := mm.(*hotstuff.ProposalMsg)
	if alt.Block == orig.Block {
		t.Fatal("nested Block not cloned")
	}
	if orig.Block.Batch != b {
		t.Fatal("original nested batch changed")
	}
	if alt.Block.Digest() == orig.Block.Digest() {
		t.Fatal("forked block digest unchanged")
	}
	if alt.Block.Height != orig.Block.Height || alt.Block.View != orig.Block.View {
		t.Fatal("unrelated nested fields changed")
	}
	if !auth.VerifierFor(1).VerifySig(0, alt.SigDigest(), alt.Sig) {
		t.Fatal("nested fork not validly re-signed")
	}
}

func TestReplaceBatchPassesThroughBatchlessMessages(t *testing.T) {
	if _, ok := byz.ReplaceBatch(&zyzzyva.OrderReqMsg{Batch: types.NewBatch()}, byz.ForkBatch, nil); ok {
		t.Fatal("empty batch should pass through")
	}
	if _, ok := byz.ReplaceBatch(&hotstuff.ProposalMsg{Block: &hotstuff.Block{}}, byz.ForkBatch, nil); ok {
		t.Fatal("batchless block should pass through")
	}
}

func TestParseCatalogRoundTrip(t *testing.T) {
	for _, e := range byz.Catalog() {
		b, err := byz.Parse(e.Name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", e.Name, err)
		}
		if b.Name() != e.Name {
			t.Fatalf("Parse(%q).Name() = %q", e.Name, b.Name())
		}
		if a := b.New(); a == nil {
			t.Fatalf("%q produced a nil actor", e.Name)
		}
	}
	if _, err := byz.Parse("delay:2ms"); err != nil {
		t.Fatalf("delay with argument: %v", err)
	}
	if _, err := byz.Parse("nope"); err == nil {
		t.Fatal("unknown behavior must error")
	}
	if _, err := byz.Parse("delay:bogus"); err == nil {
		t.Fatal("bad duration must error")
	}
}

func TestCombinatorNames(t *testing.T) {
	b := byz.Compose(byz.Equivocate{}, byz.Targeted{Inner: byz.CorruptResults{Stuff: true}, Only: []types.NodeID{2}})
	if got, want := b.Name(), "equivocate+targeted(stuff)"; got != want {
		t.Fatalf("Name() = %q, want %q", got, want)
	}
	if b.New() == nil {
		t.Fatal("composite actor nil")
	}
	if d := (byz.DelayProposals{Delay: 3 * time.Millisecond}).Name(); d != "delay" {
		t.Fatalf("delay name %q", d)
	}
}
