package byz

// Spec renders a behavior back into the grammar Parse accepts, so a
// harness failure can print a `-byz` flag that reproduces the exact
// adversary. It inverts Parse for every built-in behavior; anything
// outside the grammar (compositions, targeted wrappers) falls back to
// Name(), which is descriptive but not necessarily re-parseable.
func Spec(b Behavior) string {
	switch v := b.(type) {
	case Equivocate:
		return "equivocate"
	case SilentPhases:
		return "withhold"
	case DelayProposals:
		if v.Delay != 0 {
			return "delay:" + v.Delay.String()
		}
		return "delay"
	case CorruptResults:
		if v.Stuff {
			return "stuff"
		}
		return "corrupt"
	case StaleViewSpam:
		if v.Interval != 0 {
			return "stale:" + v.Interval.String()
		}
		return "stale"
	}
	return b.Name()
}
