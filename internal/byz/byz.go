// Package byz is a library of composable Byzantine replica behaviors.
// The paper's premise is an *untrusted* environment — up to f replicas
// may deviate arbitrarily, not merely crash — so the harness needs
// adversaries that are protocol-agnostic: a behavior wraps ANY
// registered protocol by interposing on the core.Protocol and core.Env
// surfaces. The wrapped replica runs the protocol's honest code but
// every outgoing message, reply, and timer passes through the behavior,
// which may drop, delay, replace, or fabricate traffic. Because the
// wrapper holds the replica's own signer it can produce validly-signed
// equivocations — but, like a real Byzantine node, it can never forge
// another replica's signature.
//
// Behaviors are assigned per node through harness.Options.Byzantine and
// run on the deterministic simulator: a seeded byz run replays
// identically, which is what makes attack experiments (X14, X16)
// reproducible.
package byz

import (
	"fmt"
	"time"

	"bftkit/internal/core"
	"bftkit/internal/types"
)

// Behavior is a Byzantine strategy. A Behavior value is configuration
// only; New instantiates the per-replica Actor so one Behavior can be
// assigned to several nodes without sharing mutable state.
type Behavior interface {
	Name() string
	New() Actor
}

// Verdict is an Actor's decision about one outgoing message.
type Verdict struct {
	Drop    bool          // suppress the message entirely
	Delay   time.Duration // hold the message for this long before sending
	Replace types.Message // if non-nil, substitute the payload
}

// Tools is what an Actor gets to work with. All of it is deterministic
// under the simulator's seed.
type Tools struct {
	// Env is the replica's real environment (identity, config, signer,
	// virtual clock). Sending through it bypasses interception.
	Env core.Env
	// Raw sends a message without routing it back through the actor —
	// used to emit fabricated traffic without re-interception.
	Raw func(to types.NodeID, m types.Message)
	// After schedules fn on the replica's virtual clock.
	After func(d time.Duration, fn func())
}

// Actor is the per-replica instance of a Behavior.
type Actor interface {
	// Init runs once, before any protocol event.
	Init(t *Tools)
	// Outgoing judges every message the wrapped protocol sends
	// (including each recipient of a broadcast separately, which is
	// what makes equivocation possible).
	Outgoing(to types.NodeID, m types.Message) Verdict
	// OutgoingReply may mutate a reply before the runtime stamps and
	// signs it; the signed ReplyMsg then passes through Outgoing too.
	OutgoingReply(rp *types.Reply)
}

// Passive is a no-op Actor base; embed it and override what you need.
type Passive struct{}

func (Passive) Init(*Tools)                                  {}
func (Passive) Outgoing(types.NodeID, types.Message) Verdict { return Verdict{} }
func (Passive) OutgoingReply(*types.Reply)                   {}

// Wrap interposes behavior b between proto and its environment. The
// returned value implements core.Protocol and is handed to the replica
// runtime in place of proto.
func Wrap(proto core.Protocol, b Behavior) core.Protocol {
	return &wrapper{inner: proto, actor: b.New()}
}

// wrapper implements both core.Protocol (facing the runtime) and
// core.Env (facing the wrapped protocol). The runtime invokes the
// wrapper's protocol methods; the wrapper's Init hands itself to the
// inner protocol as its environment, so every send the honest code
// makes is mediated by the actor.
type wrapper struct {
	core.Env // the real environment, set in Init

	inner     core.Protocol
	actor     Actor
	timers    map[string]func()
	nextTimer int
}

const timerPrefix = "byz|"

// Init implements core.Protocol.
func (w *wrapper) Init(env core.Env) {
	w.Env = env
	w.timers = make(map[string]func())
	w.actor.Init(&Tools{Env: env, Raw: env.Send, After: w.after})
	w.inner.Init(w)
}

// OnRequest implements core.Protocol.
func (w *wrapper) OnRequest(req *types.Request) { w.inner.OnRequest(req) }

// OnMessage implements core.Protocol.
func (w *wrapper) OnMessage(from types.NodeID, m types.Message) { w.inner.OnMessage(from, m) }

// OnExecuted implements core.Protocol.
func (w *wrapper) OnExecuted(seq types.SeqNum, batch *types.Batch, results [][]byte) {
	w.inner.OnExecuted(seq, batch, results)
}

// OnTimer implements core.Protocol. The runtime routes every timer the
// replica set — including ones the wrapper registered for delayed
// sends — back through the protocol it was constructed with, i.e. this
// wrapper; byz-internal timers are dispatched here, the rest forwarded.
func (w *wrapper) OnTimer(id core.TimerID) {
	if fn, ok := w.timers[id.Name]; ok {
		delete(w.timers, id.Name)
		fn()
		return
	}
	w.inner.OnTimer(id)
}

func (w *wrapper) after(d time.Duration, fn func()) {
	w.nextTimer++
	name := fmt.Sprintf("%s%d", timerPrefix, w.nextTimer)
	w.timers[name] = fn
	w.Env.SetTimer(core.TimerID{Name: name}, d)
}

// Send implements core.Env with actor mediation.
func (w *wrapper) Send(to types.NodeID, m types.Message) {
	v := w.actor.Outgoing(to, m)
	if v.Drop {
		return
	}
	if v.Replace != nil {
		m = v.Replace
	}
	if v.Delay > 0 {
		w.after(v.Delay, func() { w.Env.Send(to, m) })
		return
	}
	w.Env.Send(to, m)
}

// Broadcast implements core.Env by fanning out through Send, so the
// actor judges every recipient independently — the hook equivocation
// needs to show different replicas different batches at the same seq.
func (w *wrapper) Broadcast(m types.Message) {
	self := w.Env.ID()
	for _, id := range w.Env.Replicas() {
		if id == self {
			continue
		}
		w.Send(id, m)
	}
}

// Reply implements core.Env. It reproduces the runtime's reply stamping
// (identity, then signature over the stamped reply) so the outgoing
// REPLY routes through the actor like any other send; the runtime's own
// Reply would bypass interception. The actor mutates first — a result
// corrupted here is then signed, modeling a Byzantine replica that
// executes wrongly but authenticates honestly.
func (w *wrapper) Reply(rp *types.Reply) {
	w.actor.OutgoingReply(rp)
	rp.Replica = w.Env.ID()
	rp.Sig = w.Env.Signer().Sign(rp.Digest())
	w.Send(rp.Client, &core.ReplyMsg{R: rp})
}
