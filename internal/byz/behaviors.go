package byz

import (
	"fmt"
	"strings"
	"time"

	"bftkit/internal/core"
	"bftkit/internal/obsv"
	"bftkit/internal/types"
)

// ---------------------------------------------------------------------
// Equivocate: the classic safety attack on speculative fast paths
// (DC5–DC8). As leader (or chain predecessor) the node shows one half of
// the replicas one batch and the other half a different, validly-signed
// batch at the same sequence number. Honest protocols must detect the
// divergence — split vote sets, mismatched speculative histories — and
// recover through their slow path or a view change without ever letting
// two honest replicas execute different histories.

// Equivocate forks every batch-carrying message sent to the target set.
type Equivocate struct {
	// Targets receive the forged variant; empty defaults to the upper
	// half of the replica set (the lower half, which includes the usual
	// initial leader, sees the original).
	Targets []types.NodeID
}

// Name implements Behavior.
func (Equivocate) Name() string { return "equivocate" }

// New implements Behavior.
func (b Equivocate) New() Actor { return &equivActor{b: b} }

type equivActor struct {
	Passive
	b       Equivocate
	t       *Tools
	targets map[types.NodeID]bool
}

func (a *equivActor) Init(t *Tools) {
	a.t = t
	a.targets = make(map[types.NodeID]bool)
	if len(a.b.Targets) > 0 {
		for _, id := range a.b.Targets {
			a.targets[id] = true
		}
		return
	}
	ids := t.Env.Replicas()
	for _, id := range ids[len(ids)/2:] {
		a.targets[id] = true
	}
}

func (a *equivActor) Outgoing(to types.NodeID, m types.Message) Verdict {
	if !a.targets[to] {
		return Verdict{}
	}
	alt, ok := ReplaceBatch(m, ForkBatch, a.t.Env.Signer().Sign)
	if !ok {
		return Verdict{}
	}
	return Verdict{Replace: alt}
}

// ---------------------------------------------------------------------
// SilentPhases: a replica that participates in ordering but withholds
// selected phases — the adversary that separates SBFT's all-replica
// fast path (falls back to the τ3 slow path, DC6) from PoE's 2f+1
// certificates (absorbs it without a timeout, DC7), and that denies
// Zyzzyva's client its 3f+1 speculative quorum (DC8).

// SilentPhases drops every outgoing message whose obsv phase is listed.
type SilentPhases struct {
	Phases []string
}

// Name implements Behavior.
func (SilentPhases) Name() string { return "withhold" }

// New implements Behavior.
func (b SilentPhases) New() Actor {
	set := make(map[string]bool, len(b.Phases))
	for _, p := range b.Phases {
		set[p] = true
	}
	return &silentActor{phases: set}
}

type silentActor struct {
	Passive
	phases map[string]bool
}

func (a *silentActor) Outgoing(to types.NodeID, m types.Message) Verdict {
	return Verdict{Drop: a.phases[obsv.PhaseOf(m.Kind())]}
}

// DefaultVotePhases are the vote/commit/reply phases a generic
// withholder suppresses: enough to deny every optimistic all-replica
// quorum while leaving proposals, view changes, checkpoints, and state
// transfer untouched so the honest 2f+1 can still make progress.
var DefaultVotePhases = []string{
	"prepare", "commit", "vote", "share", "sign", "prevote", "precommit",
	"accept", "certify", "qc", "update", "append", "query", "write",
	"repair", obsv.PhaseClient,
}

// WithholdVotes is SilentPhases over DefaultVotePhases.
func WithholdVotes() Behavior { return SilentPhases{Phases: DefaultVotePhases} }

// ---------------------------------------------------------------------
// DelayProposals: the X14 delay attack, generalized from PBFT to any
// protocol. The node stays just inside every timeout, degrading latency
// without ever triggering a view change — the paper's argument (§1,
// DC12) for why robustness needs more than liveness timers.

// DelayProposals holds selected outgoing messages for a fixed time.
type DelayProposals struct {
	// Delay per message; default 3× the network's base delay would be
	// protocol-dependent, so the zero value means 5ms.
	Delay time.Duration
	// Phases limits the attack; empty means every ordering-phase
	// message (view-change/checkpoint/recovery traffic stays timely, so
	// the attack remains invisible to failure detectors).
	Phases []string
}

// Name implements Behavior.
func (DelayProposals) Name() string { return "delay" }

// New implements Behavior.
func (b DelayProposals) New() Actor {
	d := b.Delay
	if d == 0 {
		d = 5 * time.Millisecond
	}
	var set map[string]bool
	if len(b.Phases) > 0 {
		set = make(map[string]bool, len(b.Phases))
		for _, p := range b.Phases {
			set[p] = true
		}
	}
	return &delayActor{d: d, phases: set}
}

type delayActor struct {
	Passive
	d      time.Duration
	phases map[string]bool
}

func (a *delayActor) Outgoing(to types.NodeID, m types.Message) Verdict {
	ph := obsv.PhaseOf(m.Kind())
	if a.phases != nil {
		if a.phases[ph] {
			return Verdict{Delay: a.d}
		}
		return Verdict{}
	}
	if obsv.IsProtocolPhase(ph) {
		return Verdict{Delay: a.d}
	}
	return Verdict{}
}

// ---------------------------------------------------------------------
// CorruptResults: the replica orders and executes honestly but reports
// wrong execution results to clients — the attack that makes f+1
// matching replies (P6) the client's last line of defense. With Stuff
// set it additionally mails the client forged replies under other
// replicas' identities; a client that keys votes by the claimed replica
// field instead of the authenticated sender would count those as a
// quorum.

// CorruptValue is the result every corrupted reply carries.
var CorruptValue = []byte("byz/corrupt-result")

// CorruptResults corrupts this replica's execution results; Stuff adds
// f forged-identity replies per corrupted reply.
type CorruptResults struct {
	Stuff bool
}

// Name implements Behavior.
func (b CorruptResults) Name() string {
	if b.Stuff {
		return "stuff"
	}
	return "corrupt"
}

// New implements Behavior.
func (b CorruptResults) New() Actor { return &corruptActor{b: b} }

type corruptActor struct {
	Passive
	b CorruptResults
	t *Tools
}

func (a *corruptActor) Init(t *Tools) { a.t = t }

func (a *corruptActor) OutgoingReply(rp *types.Reply) {
	rp.Result = append([]byte(nil), CorruptValue...)
	if !a.b.Stuff {
		return
	}
	// Forge f more votes for the corrupted result. The signatures are
	// garbage — a Byzantine node cannot sign for others — so only a
	// client that skips signature checks AND trusts the claimed
	// identity is fooled.
	self := a.t.Env.ID()
	left := a.t.Env.F()
	for _, id := range a.t.Env.Replicas() {
		if left == 0 {
			break
		}
		if id == self {
			continue
		}
		forged := *rp
		forged.Replica = id
		forged.Sig = []byte("byz/forged-sig")
		a.t.Raw(rp.Client, &core.ReplyMsg{R: &forged})
		left--
	}
}

// ---------------------------------------------------------------------
// StaleViewSpam: replays old, validly-signed protocol messages forever.
// Honest replicas must treat them as the duplicates/stale views they
// are; any state regression (re-voting, view rollback) is a safety bug
// the auditor catches.

// StaleViewSpam periodically rebroadcasts previously-sent messages.
type StaleViewSpam struct {
	// Interval between replays (default 20ms).
	Interval time.Duration
	// Keep bounds the replay buffer (default 16 messages).
	Keep int
}

// Name implements Behavior.
func (StaleViewSpam) Name() string { return "stale" }

// New implements Behavior.
func (b StaleViewSpam) New() Actor {
	if b.Interval == 0 {
		b.Interval = 20 * time.Millisecond
	}
	if b.Keep == 0 {
		b.Keep = 16
	}
	return &staleActor{b: b}
}

type staleActor struct {
	Passive
	b     StaleViewSpam
	t     *Tools
	cache []types.Message
	next  int
}

func (a *staleActor) Init(t *Tools) {
	a.t = t
	t.After(a.b.Interval, a.tick)
}

func (a *staleActor) Outgoing(to types.NodeID, m types.Message) Verdict {
	ph := obsv.PhaseOf(m.Kind())
	if obsv.IsProtocolPhase(ph) || ph == obsv.PhaseViewChange {
		if len(a.cache) < a.b.Keep {
			a.cache = append(a.cache, m)
		} else {
			a.cache[a.next%a.b.Keep] = m
		}
		a.next++
	}
	return Verdict{}
}

func (a *staleActor) tick() {
	if len(a.cache) > 0 {
		m := a.cache[a.next%len(a.cache)] // oldest-ish slot, deterministic
		self := a.t.Env.ID()
		for _, id := range a.t.Env.Replicas() {
			if id != self {
				a.t.Raw(id, m)
			}
		}
	}
	a.t.After(a.b.Interval, a.tick)
}

// ---------------------------------------------------------------------
// Combinators: selective targeting and composition.

// Targeted restricts Inner's interference to messages addressed to Only
// (and replies destined for clients in Only) — e.g. an equivocator that
// only lies to one replica, or a withholder that starves one client.
type Targeted struct {
	Inner Behavior
	Only  []types.NodeID
}

// Name implements Behavior.
func (b Targeted) Name() string { return "targeted(" + b.Inner.Name() + ")" }

// New implements Behavior.
func (b Targeted) New() Actor {
	set := make(map[types.NodeID]bool, len(b.Only))
	for _, id := range b.Only {
		set[id] = true
	}
	return &targetedActor{inner: b.Inner.New(), only: set}
}

type targetedActor struct {
	inner Actor
	only  map[types.NodeID]bool
}

func (a *targetedActor) Init(t *Tools) { a.inner.Init(t) }

func (a *targetedActor) Outgoing(to types.NodeID, m types.Message) Verdict {
	if !a.only[to] {
		return Verdict{}
	}
	return a.inner.Outgoing(to, m)
}

func (a *targetedActor) OutgoingReply(rp *types.Reply) {
	if a.only[rp.Client] {
		a.inner.OutgoingReply(rp)
	}
}

// Compose runs several behaviors on the same node, folding their
// verdicts in order (a drop wins; replacements chain; delays add).
func Compose(bs ...Behavior) Behavior { return composite(bs) }

type composite []Behavior

// Name implements Behavior.
func (c composite) Name() string {
	names := make([]string, len(c))
	for i, b := range c {
		names[i] = b.Name()
	}
	return strings.Join(names, "+")
}

// New implements Behavior.
func (c composite) New() Actor {
	actors := make([]Actor, len(c))
	for i, b := range c {
		actors[i] = b.New()
	}
	return &compositeActor{actors: actors}
}

type compositeActor struct {
	actors []Actor
}

func (a *compositeActor) Init(t *Tools) {
	for _, x := range a.actors {
		x.Init(t)
	}
}

func (a *compositeActor) Outgoing(to types.NodeID, m types.Message) Verdict {
	var out Verdict
	for _, x := range a.actors {
		v := x.Outgoing(to, m)
		if v.Drop {
			return Verdict{Drop: true}
		}
		if v.Replace != nil {
			m = v.Replace
			out.Replace = v.Replace
		}
		out.Delay += v.Delay
	}
	return out
}

func (a *compositeActor) OutgoingReply(rp *types.Reply) {
	for _, x := range a.actors {
		x.OutgoingReply(rp)
	}
}

// ---------------------------------------------------------------------
// CLI surface.

// CatalogEntry describes one built-in behavior for -byz listings.
type CatalogEntry struct {
	Name string
	Help string
}

// Catalog lists the built-in behaviors Parse accepts.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{"equivocate", "propose different validly-signed batches to different replicas at the same seq"},
		{"withhold", "participate in ordering but withhold votes/commits/replies"},
		{"delay", "delay ordering-phase messages while staying under every timeout (delay:<dur> to tune)"},
		{"corrupt", "execute honestly but report wrong results to clients"},
		{"stuff", "corrupt results AND forge f extra replies under other replicas' identities"},
		{"stale", "replay old validly-signed protocol messages forever (stale:<interval> to tune)"},
	}
}

// Parse resolves a CLI behavior spec ("equivocate", "delay:2ms", …).
func Parse(spec string) (Behavior, error) {
	name, arg, _ := strings.Cut(spec, ":")
	switch name {
	case "equivocate":
		return Equivocate{}, nil
	case "withhold":
		return WithholdVotes(), nil
	case "delay":
		d := time.Duration(0)
		if arg != "" {
			var err error
			if d, err = time.ParseDuration(arg); err != nil {
				return nil, fmt.Errorf("byz: bad delay %q: %v", arg, err)
			}
		}
		return DelayProposals{Delay: d}, nil
	case "corrupt":
		return CorruptResults{}, nil
	case "stuff":
		return CorruptResults{Stuff: true}, nil
	case "stale":
		iv := time.Duration(0)
		if arg != "" {
			var err error
			if iv, err = time.ParseDuration(arg); err != nil {
				return nil, fmt.Errorf("byz: bad interval %q: %v", arg, err)
			}
		}
		return StaleViewSpam{Interval: iv}, nil
	}
	return nil, fmt.Errorf("byz: unknown behavior %q (known: equivocate, withhold, delay, corrupt, stuff, stale)", spec)
}
