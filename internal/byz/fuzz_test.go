package byz

import (
	"reflect"
	"testing"
)

// FuzzByzSpecParse pins the Parse/Spec inverse pair: any spec Parse
// accepts must render (via Spec) back into a string that re-parses to
// the same behavior. Chaos reproducer artifacts and harness repro lines
// both rely on this — a spec that parses but doesn't round-trip would
// produce artifacts that replay a different adversary than the one that
// found the bug.
func FuzzByzSpecParse(f *testing.F) {
	for _, e := range Catalog() {
		f.Add(e.Name)
	}
	f.Add("delay:2ms")
	f.Add("delay:1h2m3s")
	f.Add("stale:500ms")
	f.Add("delay:")
	f.Add("stale:-5ms")
	f.Add("equivocate:unexpected-arg")
	f.Add("")

	f.Fuzz(func(t *testing.T, spec string) {
		b, err := Parse(spec)
		if err != nil {
			if b != nil {
				t.Fatalf("Parse(%q) returned both a behavior and an error: %v", spec, err)
			}
			return
		}
		if b == nil {
			t.Fatalf("Parse(%q) returned nil behavior without an error", spec)
		}
		s := Spec(b)
		b2, err := Parse(s)
		if err != nil {
			t.Fatalf("Spec(Parse(%q)) = %q does not re-parse: %v", spec, s, err)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("round trip changed the behavior: Parse(%q)=%#v, Parse(%q)=%#v", spec, b, s, b2)
		}
		if s2 := Spec(b2); s2 != s {
			t.Fatalf("Spec is not stable: %q then %q", s, s2)
		}
		// Every parseable behavior must instantiate a working actor.
		if b.New() == nil {
			t.Fatalf("Parse(%q).New() returned nil actor", spec)
		}
	})
}
