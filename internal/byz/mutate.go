package byz

import (
	"reflect"

	"bftkit/internal/types"
)

// sigDigester matches the repository-wide convention for signed
// protocol messages: SigDigest returns the digest the Sig field covers.
type sigDigester interface {
	SigDigest() types.Digest
}

// ReplaceBatch returns a deep-enough copy of m with its batch replaced
// by mut(batch). It understands the repository's message conventions by
// reflection, so one mutator serves every protocol:
//
//   - a `Batch *types.Batch` field at the top level (PBFT/SBFT
//     PrePrepareMsg, Zyzzyva OrderReqMsg, PoE ProposeMsg, Tendermint
//     ProposalMsg, …) or one pointer-to-struct level down (HotStuff's
//     ProposalMsg.Block);
//   - an optional `Digest types.Digest` field that equals the old
//     batch's digest is recomputed for the new batch;
//   - an optional `Sig []byte` field on a message implementing
//     SigDigest() is re-signed via sign, covering the mutated content.
//
// The original message is never modified (proposers keep pointers into
// their own log). ok is false when m carries no non-empty batch — such
// messages pass through unchanged, which keeps generic behaviors
// best-effort rather than protocol-specific.
func ReplaceBatch(m types.Message, mut func(*types.Batch) *types.Batch, sign func(types.Digest) []byte) (types.Message, bool) {
	pv := reflect.ValueOf(m)
	if pv.Kind() != reflect.Ptr || pv.IsNil() || pv.Elem().Kind() != reflect.Struct {
		return m, false
	}
	clone := reflect.New(pv.Elem().Type())
	clone.Elem().Set(pv.Elem())

	host := clone.Elem() // struct holding the Batch field
	bf := host.FieldByName("Batch")
	if !batchField(bf) {
		// One nesting level: a pointer-to-struct field carrying the batch.
		host = reflect.Value{}
		for i := 0; i < clone.Elem().NumField(); i++ {
			f := clone.Elem().Field(i)
			if f.Kind() != reflect.Ptr || f.IsNil() || f.Elem().Kind() != reflect.Struct || !f.CanSet() {
				continue
			}
			if inner := f.Elem().FieldByName("Batch"); batchField(inner) {
				nested := reflect.New(f.Elem().Type())
				nested.Elem().Set(f.Elem())
				clone.Elem().Field(i).Set(nested)
				host = nested.Elem()
				bf = host.FieldByName("Batch")
				break
			}
		}
		if !host.IsValid() {
			return m, false
		}
	}

	oldBatch := bf.Interface().(*types.Batch)
	newBatch := mut(oldBatch)
	if newBatch == nil || newBatch == oldBatch {
		return m, false
	}
	bf.Set(reflect.ValueOf(newBatch))

	digestType := reflect.TypeOf(types.Digest{})
	for _, sv := range []reflect.Value{host, clone.Elem()} {
		if !sv.IsValid() {
			continue
		}
		if df := sv.FieldByName("Digest"); df.IsValid() && df.Type() == digestType && df.CanSet() {
			if df.Interface().(types.Digest) == oldBatch.Digest() {
				df.Set(reflect.ValueOf(newBatch.Digest()))
			}
		}
	}

	out := clone.Interface().(types.Message)
	if sd, ok := out.(sigDigester); ok && sign != nil {
		if sf := clone.Elem().FieldByName("Sig"); sf.IsValid() && sf.Type() == reflect.TypeOf([]byte(nil)) && sf.CanSet() && sf.Len() > 0 {
			sf.Set(reflect.ValueOf(sign(sd.SigDigest())))
		}
	}
	return out, true
}

func batchField(v reflect.Value) bool {
	return v.IsValid() && v.Type() == reflect.TypeOf((*types.Batch)(nil)) &&
		!v.IsNil() && v.CanSet() && v.Interface().(*types.Batch).Len() > 0
}

// ForkBatch is the canonical equivocation mutator: it returns a batch
// over the same validly-signed client requests whose digest differs
// from the original (reversed order, or the single request duplicated).
// It is deterministic, so every target of one equivocation sees the
// same alternative history.
func ForkBatch(b *types.Batch) *types.Batch {
	if b == nil || b.Len() == 0 {
		return b
	}
	rs := make([]*types.Request, len(b.Requests))
	copy(rs, b.Requests)
	if len(rs) == 1 {
		rs = append(rs, rs[0])
	} else {
		for i, j := 0, len(rs)-1; i < j; i, j = i+1, j-1 {
			rs[i], rs[j] = rs[j], rs[i]
		}
	}
	return types.NewBatch(rs...)
}
