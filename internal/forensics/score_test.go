package forensics

import (
	"testing"
	"time"

	"bftkit/internal/crypto"
	"bftkit/internal/protocols/pbft"
	"bftkit/internal/types"
)

// unsigned builds an ordering message with no signature: it feeds the
// traffic and lag statistics without entering the claim tables.
func unsigned(view types.View, seq types.SeqNum) *pbft.PrePrepareMsg {
	var h types.Hasher
	h.Str("traffic").U64(uint64(seq))
	return &pbft.PrePrepareMsg{View: view, Seq: seq, Digest: h.Sum()}
}

func scoreOf(r *Report, id types.NodeID) Score {
	for _, s := range r.Scores {
		if s.Node == id {
			return s
		}
	}
	return Score{}
}

// feedTraffic delivers count ordering messages from each sender at
// evenly spaced times across [0, span], with unique sequence numbers so
// no lag groups form.
func feedTraffic(a *Auditor, span time.Duration, count int, senders ...types.NodeID) {
	var seq types.SeqNum = 1
	for i := 0; i < count; i++ {
		at := span * time.Duration(i) / time.Duration(count)
		for _, from := range senders {
			a.Observe(at, from, (from+1)%4, unsigned(1, seq))
			seq++
		}
	}
}

func TestWithholdingAccused(t *testing.T) {
	a, _ := testAuditor(t, Options{})
	span := 1600 * time.Millisecond
	// Replicas 0, 2, 3 chatter all run; replica 1 is silent throughout.
	feedTraffic(a, span, 200, 0, 2, 3)
	r := a.Report(span)
	s := scoreOf(r, 1)
	if s.Withhold < 0.9 || !s.Accused {
		t.Fatalf("silent replica not accused: %+v", s)
	}
	for _, id := range []types.NodeID{0, 2, 3} {
		if hs := scoreOf(r, id); hs.Accused || hs.Withhold > 0.2 {
			t.Fatalf("honest replica %d wrongly suspected: %+v", id, hs)
		}
	}
	if len(r.Accused) != 1 || r.Accused[0] != 1 {
		t.Fatalf("accused list = %v, want [1]", r.Accused)
	}
}

func TestAsymmetricRolesWithholdNotAccused(t *testing.T) {
	a, _ := testAuditor(t, Options{AsymmetricRoles: true})
	span := 1600 * time.Millisecond
	// Same silence pattern as TestWithholdingAccused, but the deployment
	// declares asymmetric replica roles (a reduced active set, a tree
	// interior): replica 1's silence may be a benched role, so the
	// saturated withhold score must not escalate to an accusation.
	feedTraffic(a, span, 200, 0, 2, 3)
	r := a.Report(span)
	s := scoreOf(r, 1)
	if s.Withhold < 0.9 {
		t.Fatalf("withhold score should still saturate: %+v", s)
	}
	if s.Accused || len(r.Accused) != 0 {
		t.Fatalf("asymmetric-role silence escalated to accusation: %+v", s)
	}
	if s.Note == "" {
		t.Fatalf("saturated-but-unaccused score should carry an explanatory note")
	}
}

func TestLocalVantageNotScored(t *testing.T) {
	// A node-local auditor (bftnode -forensics) never sees its host's
	// own sends: from replica 1's vantage, replica 1 is silent all run.
	// That silence is an artifact of the vantage, not evidence.
	self := types.NodeID(1)
	a, _ := testAuditor(t, Options{LocalNode: &self})
	span := 1600 * time.Millisecond
	feedTraffic(a, span, 200, 0, 2, 3)
	r := a.Report(span)
	s := scoreOf(r, 1)
	if s.Withhold != 0 || s.Suspicion != 0 || s.Accused {
		t.Fatalf("local vantage scored its own host: %+v", s)
	}
	if s.Note == "" {
		t.Fatalf("unobservable host should carry an explanatory note")
	}
	// The peers stay clean, and the baseline is not dragged down by the
	// host's phantom zero-traffic row.
	for _, id := range []types.NodeID{0, 2, 3} {
		if hs := scoreOf(r, id); hs.Accused || hs.Withhold > 0.2 {
			t.Fatalf("honest replica %d wrongly suspected from local vantage: %+v", id, hs)
		}
	}
	if len(r.Accused) != 0 {
		t.Fatalf("accused list = %v, want empty", r.Accused)
	}

	// A genuinely silent *peer* is still caught from a local vantage.
	b, _ := testAuditor(t, Options{LocalNode: &self})
	feedTraffic(b, span, 200, 0, 3) // peer 2 silent, host 1 unobservable
	if s := scoreOf(b.Report(span), 2); s.Withhold < 0.9 || !s.Accused {
		t.Fatalf("silent peer not accused from local vantage: %+v", s)
	}
}

func TestCrashWindowNotAccused(t *testing.T) {
	a, _ := testAuditor(t, Options{})
	span := 1600 * time.Millisecond
	crashFrom, crashTo := 400*time.Millisecond, 700*time.Millisecond
	var seq types.SeqNum = 1
	for i := 0; i < 200; i++ {
		at := span * time.Duration(i) / 200
		for _, from := range []types.NodeID{0, 1, 2, 3} {
			if from == 1 && at >= crashFrom && at < crashTo {
				continue // crashed: silent for ~1.5 octiles
			}
			a.Observe(at, from, (from+1)%4, unsigned(1, seq))
			seq++
		}
	}
	r := a.Report(span)
	if s := scoreOf(r, 1); s.Accused {
		t.Fatalf("windowed outage must not accuse: %+v", s)
	}

	// The same shape with the window excused scores even lower.
	b, _ := testAuditor(t, Options{})
	b.ExcuseDowntime(1, crashFrom, crashTo)
	seq = 1
	for i := 0; i < 200; i++ {
		at := span * time.Duration(i) / 200
		for _, from := range []types.NodeID{0, 1, 2, 3} {
			if from == 1 && at >= crashFrom && at < crashTo {
				continue
			}
			b.Observe(at, from, (from+1)%4, unsigned(1, seq))
			seq++
		}
	}
	if s := scoreOf(b.Report(span), 1); s.Withhold != 0 {
		t.Fatalf("excused downtime still scored: %+v", s)
	}
}

func TestDelayAccused(t *testing.T) {
	a, _ := testAuditor(t, Options{})
	span := 1600 * time.Millisecond
	// Every slot is a broadcast all four replicas send to receiver 0;
	// replica 1's copy lands 25ms behind its peers, every time.
	for seq := types.SeqNum(1); seq <= 64; seq++ {
		at := span * time.Duration(seq-1) / 64
		m := unsigned(1, seq)
		for _, from := range []types.NodeID{0, 2, 3} {
			a.Observe(at, from, 0, m)
		}
		a.Observe(at+25*time.Millisecond, 1, 0, m)
	}
	r := a.Report(span)
	s := scoreOf(r, 1)
	if s.Delay < 0.9 || !s.Accused {
		t.Fatalf("persistently late replica not accused: %+v", s)
	}
	for _, id := range []types.NodeID{0, 2, 3} {
		if hs := scoreOf(r, id); hs.Accused || hs.Delay > 0.2 {
			t.Fatalf("honest replica %d wrongly suspected: %+v", id, hs)
		}
	}
}

func TestDelaySpikeNotAccused(t *testing.T) {
	a, _ := testAuditor(t, Options{})
	span := 1600 * time.Millisecond
	// Replica 1 suffers one 200ms network spike covering ~an octile;
	// the rest of the run it is as fast as its peers.
	for seq := types.SeqNum(1); seq <= 64; seq++ {
		at := span * time.Duration(seq-1) / 64
		m := unsigned(1, seq)
		for _, from := range []types.NodeID{0, 2, 3} {
			a.Observe(at, from, 0, m)
		}
		lag := time.Duration(0)
		if at >= 400*time.Millisecond && at < 600*time.Millisecond {
			lag = 200 * time.Millisecond
		}
		a.Observe(at+lag, 1, 0, m)
	}
	if s := scoreOf(a.Report(span), 1); s.Accused {
		t.Fatalf("windowed delay spike must not accuse: %+v", s)
	}
}

func TestQuietRunScoresNothing(t *testing.T) {
	// Below the per-octile activity floor nothing is considered, so an
	// idle cluster can never accuse anyone.
	a, _ := testAuditor(t, Options{})
	feedTraffic(a, 1600*time.Millisecond, 4, 0, 2, 3)
	r := a.Report(1600 * time.Millisecond)
	if !r.Clean() {
		t.Fatalf("idle run produced a verdict: accused=%v proofs=%v", r.Accused, r.Proofs)
	}
}

func TestKeyRingVerify(t *testing.T) {
	auth := crypto.NewAuthority(testSeed)
	ring := auth.KeyRing(4)
	var h types.Hasher
	h.Str("keyring")
	d := h.Sum()
	sig := auth.Signer(2).Sign(d)
	if !ring.VerifySig(2, d, sig) {
		t.Fatal("valid signature rejected")
	}
	if ring.VerifySig(1, d, sig) {
		t.Fatal("signature accepted under the wrong key")
	}
	if ring.VerifySig(9, d, sig) {
		t.Fatal("unknown replica accepted")
	}
	bad := append([]byte(nil), sig...)
	bad[3] ^= 1
	if ring.VerifySig(2, d, bad) {
		t.Fatal("garbled signature accepted")
	}
	if ring.VerifySig(2, d, nil) {
		t.Fatal("empty signature accepted")
	}
}
