package forensics

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bftkit/internal/types"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenAuditor replays a fixed misbehavior script: replica 0
// equivocates, replica 2 relays a garbled signature, replica 3 replays,
// and replica 1 signs a divergent result. Everything is derived from
// the deterministic test authority, so the evidence bytes are stable.
func goldenAuditor(t *testing.T) (*Auditor, *Report) {
	t.Helper()
	a, auth := testAuditor(t, Options{ReplayThreshold: 3, ReplayWindow: 20 * time.Millisecond})

	a.Observe(10*time.Millisecond, 0, 1, preprepare(auth, 0, 1, 5, "payload-A"))
	a.Observe(12*time.Millisecond, 0, 2, preprepare(auth, 0, 1, 5, "payload-B"))

	garbled := preprepare(auth, 0, 1, 6, "payload-C")
	garbled.Sig[0] ^= 0xff
	a.Observe(20*time.Millisecond, 2, 1, garbled)

	replayed := preprepare(auth, 3, 2, 7, "payload-D")
	for i := 0; i < 3; i++ {
		a.Observe(time.Duration(30+15*i)*time.Millisecond, 3, 1, replayed)
	}

	for i := 2; i < 4; i++ {
		a.Observe(time.Duration(70+i)*time.Millisecond, types.NodeID(i), types.ClientIDBase, signedReply(auth, types.NodeID(i), 9, "ok"))
	}
	a.Observe(75*time.Millisecond, 1, types.ClientIDBase, signedReply(auth, 1, 9, "tampered"))

	return a, a.Report(100 * time.Millisecond)
}

func TestReportGolden(t *testing.T) {
	_, r := goldenAuditor(t)
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	data = append(data, '\n')
	path := filepath.Join("testdata", "report.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatalf("report drifted from golden file (run with -update to regenerate)\ngot:\n%s", data)
	}
}

// TestProofRoundTrip serializes every golden proof, re-reads it, and
// verifies it offline with nothing but the public key ring — the
// third-party auditor workflow.
func TestProofRoundTrip(t *testing.T) {
	a, r := goldenAuditor(t)
	_ = a
	if len(r.Proofs) != 4 {
		t.Fatalf("want 4 proofs (equivocation, forged-sig, replay, divergent-result), got %v", r.Proofs)
	}
	ring := testRing(t)
	kinds := map[string]bool{}
	for _, p := range r.Proofs {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		var back Proof
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if err := back.Verify(ring, r.F); err != nil {
			t.Fatalf("%s proof fails offline verification after round trip: %v", p.Proof, err)
		}
		kinds[back.Proof] = true
	}
	for _, k := range []string{ProofEquivocation, ProofForgedSig, ProofReplay, ProofDivergentResult} {
		if !kinds[k] {
			t.Fatalf("proof kind %s missing from golden run", k)
		}
	}
}

// TestProofTampering: any mutation of the evidence must break offline
// verification.
func TestProofTampering(t *testing.T) {
	_, r := goldenAuditor(t)
	ring := testRing(t)
	for _, p := range r.Proofs {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatal(err)
		}
		mutate := func(f func(*Proof)) *Proof {
			var cp Proof
			if err := json.Unmarshal(data, &cp); err != nil {
				t.Fatal(err)
			}
			f(&cp)
			return &cp
		}
		var tampered []*Proof
		switch p.Proof {
		case ProofEquivocation:
			tampered = append(tampered,
				mutate(func(c *Proof) { c.First.Sig[0] ^= 1 }),
				mutate(func(c *Proof) { c.Second.Digest[0] ^= 1 }),
				mutate(func(c *Proof) { c.Culprit = 3 }),
				mutate(func(c *Proof) { c.Second.Digest = c.First.Digest; c.Second.Sig = c.First.Sig }),
			)
		case ProofForgedSig:
			tampered = append(tampered,
				mutate(func(c *Proof) { c.First.Sender++ }),
				mutate(func(c *Proof) { c.First.Sig = nil }),
				// Substituting the genuine signature leaves nothing forged.
				mutate(func(c *Proof) {
					c.First.Sig = testAuth(t).Signer(c.First.Signer).Sign(c.First.Digest)
				}),
			)
		case ProofReplay:
			tampered = append(tampered,
				mutate(func(c *Proof) { c.First.Sig[0] ^= 1 }),
				mutate(func(c *Proof) { c.ReplayCount = 1 }),
				mutate(func(c *Proof) { c.Culprit = 2 }),
			)
		case ProofDivergentResult:
			tampered = append(tampered,
				mutate(func(c *Proof) { c.Reply.Sig[0] ^= 1 }),
				mutate(func(c *Proof) { c.Reply.Result = c.References[0].Result }),
				mutate(func(c *Proof) { c.References = c.References[:0] }),
				mutate(func(c *Proof) { c.References[0].Replica = c.Culprit }),
			)
		}
		for i, tp := range tampered {
			if err := tp.Verify(ring, r.F); err == nil {
				t.Fatalf("tampered %s proof #%d still verifies", p.Proof, i)
			}
		}
	}
}

func TestReportTableAndJSON(t *testing.T) {
	_, r := goldenAuditor(t)
	var buf bytes.Buffer
	r.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"forensics verdict", "ACCUSED", "equivocation", "divergent-result"} {
		if !strings.Contains(out, want) {
			t.Fatalf("verdict table missing %q:\n%s", want, out)
		}
	}
	if r.Clean() {
		t.Fatal("guilty report claims to be clean")
	}
	path := filepath.Join(t.TempDir(), "evidence.forensics.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Proofs) != len(r.Proofs) || back.N != r.N {
		t.Fatalf("evidence bundle round trip lost data: %+v", back)
	}
}
