package forensics

// Proof types: self-contained, JSON-serializable records of replica
// misbehavior. Each proof carries every signature it rests on, so a
// third party holding only the deployment's public keys (crypto.KeyRing,
// or a live crypto.Verifier) can re-check it offline, long after the
// run's transcripts are gone.
//
// Soundness rests on two properties of the repo's signing discipline:
// every protocol's SigDigest embeds a kind tag plus the (view, seq)
// slot, so a signature over a SigDigest is bound to exactly one slot of
// one message kind; and types.Reply.Digest covers every reply field
// except Replica and Sig, so two signed replies are comparable field by
// field. What a signature cannot attest — how many times a message was
// delivered, or who pushed bytes onto the wire — is recorded as the
// auditor's observation and marked as such in the verification rules
// below.

import (
	"fmt"
	"time"

	"bftkit/internal/core"
	"bftkit/internal/types"
)

// Proof kinds.
const (
	// ProofEquivocation: one replica validly signed two conflicting
	// messages of the same kind for the same (view, seq) slot.
	ProofEquivocation = "equivocation"
	// ProofForgedSig: a transport sender delivered a message whose
	// signature claim does not verify under the claimed signer's key —
	// a forged or garbled signature. The culprit is the sender, never
	// the claimed signer (who may be the forgery's victim).
	ProofForgedSig = "forged-sig"
	// ProofReplay: one replica re-delivered an identical validly-signed
	// ordering message to the same receiver well past any legitimate
	// retransmission bound.
	ProofReplay = "replay"
	// ProofDivergentResult: one replica signed a reply whose result
	// conflicts with f+1 matching signed replies for the same request
	// at the same sequence number.
	ProofDivergentResult = "divergent-result"
)

// SigVerifier is the only capability proof verification needs. Both
// *crypto.Verifier (live, cost-accounted) and crypto.KeyRing (offline,
// public keys only) satisfy it.
type SigVerifier interface {
	VerifySig(id types.NodeID, d types.Digest, sig []byte) bool
}

// Evidence is one retained signature claim together with the transport
// context it was observed in. Signer/Digest/Sig are the verifiable
// part; Sender, To, and At are the auditor's observation.
type Evidence struct {
	Signer types.NodeID  `json:"signer"`
	Sender types.NodeID  `json:"sender"`
	To     types.NodeID  `json:"to"`
	Kind   string        `json:"kind"`
	View   types.View    `json:"view"`
	Seq    types.SeqNum  `json:"seq"`
	Digest types.Digest  `json:"digest"`
	Sig    []byte        `json:"sig"`
	At     time.Duration `json:"at"`
}

// Proof is one verifiable misbehavior record.
type Proof struct {
	Proof   string        `json:"proof"` // one of the Proof* kinds
	Culprit types.NodeID  `json:"culprit"`
	At      time.Duration `json:"at"`
	Detail  string        `json:"detail"`

	// First/Second carry the claim evidence for equivocation (both),
	// forged-sig (First only), and replay (First only).
	First  *Evidence `json:"first,omitempty"`
	Second *Evidence `json:"second,omitempty"`

	// Replay attestation: identical deliveries observed to one receiver
	// across [First.At, ReplayUntil].
	ReplayCount int           `json:"replay_count,omitempty"`
	ReplayUntil time.Duration `json:"replay_until,omitempty"`

	// Divergent-result evidence: the culprit's signed reply against
	// f+1 mutually-matching signed replies from distinct replicas.
	Reply      *types.Reply   `json:"reply,omitempty"`
	References []*types.Reply `json:"references,omitempty"`
}

// Verify re-checks the proof against sigs only: it returns nil when the
// cryptographic core of the proof holds under v. f is the deployment's
// fault threshold (used by divergent-result quorum sizing; ignored
// otherwise).
func (p *Proof) Verify(v SigVerifier, f int) error {
	switch p.Proof {
	case ProofEquivocation:
		a, b := p.First, p.Second
		if a == nil || b == nil {
			return fmt.Errorf("equivocation proof needs two evidence entries")
		}
		if a.Signer != p.Culprit || b.Signer != p.Culprit {
			return fmt.Errorf("evidence signers %v/%v do not match culprit %v", a.Signer, b.Signer, p.Culprit)
		}
		if a.Kind != b.Kind || a.View != b.View || a.Seq != b.Seq {
			return fmt.Errorf("evidence entries are for different slots: %s(%d,%d) vs %s(%d,%d)",
				a.Kind, a.View, a.Seq, b.Kind, b.View, b.Seq)
		}
		if a.Digest == b.Digest {
			return fmt.Errorf("evidence entries carry the same digest — duplicates, not conflict")
		}
		if !v.VerifySig(a.Signer, a.Digest, a.Sig) {
			return fmt.Errorf("first signature does not verify")
		}
		if !v.VerifySig(b.Signer, b.Digest, b.Sig) {
			return fmt.Errorf("second signature does not verify")
		}
		return nil

	case ProofForgedSig:
		if p.First == nil {
			return fmt.Errorf("forged-sig proof needs evidence")
		}
		if p.Culprit != p.First.Sender {
			return fmt.Errorf("forged-sig culprit %v must be the observed sender %v", p.Culprit, p.First.Sender)
		}
		if len(p.First.Sig) == 0 {
			return fmt.Errorf("empty signature is absence of a claim, not forgery")
		}
		if v.VerifySig(p.First.Signer, p.First.Digest, p.First.Sig) {
			return fmt.Errorf("signature verifies — nothing was forged")
		}
		return nil

	case ProofReplay:
		if p.First == nil {
			return fmt.Errorf("replay proof needs evidence")
		}
		if p.Culprit != p.First.Signer || p.Culprit != p.First.Sender {
			return fmt.Errorf("replay culprit must be both signer and sender of the replayed message")
		}
		if p.ReplayCount < 2 {
			return fmt.Errorf("replay count %d attests no repetition", p.ReplayCount)
		}
		if !v.VerifySig(p.First.Signer, p.First.Digest, p.First.Sig) {
			return fmt.Errorf("replayed message's signature does not verify")
		}
		return nil

	case ProofDivergentResult:
		rp := p.Reply
		if rp == nil || len(p.References) < f+1 {
			return fmt.Errorf("divergent-result proof needs the culprit reply and >= f+1 references")
		}
		if rp.Replica != p.Culprit {
			return fmt.Errorf("culprit reply is signed by %v, not culprit %v", rp.Replica, p.Culprit)
		}
		// The runtime's dedup sentinel is re-execution bookkeeping: an
		// honest replica validly signs both the real result and a later
		// "duplicate" for the same request, so a proof resting on a
		// sentinel on either side proves nothing.
		if string(rp.Result) == string(core.DuplicateResult) {
			return fmt.Errorf("culprit result is the dedup sentinel, not an application result")
		}
		if !v.VerifySig(rp.Replica, rp.Digest(), rp.Sig) {
			return fmt.Errorf("culprit reply signature does not verify")
		}
		seen := map[types.NodeID]bool{rp.Replica: true}
		for i, ref := range p.References {
			if ref == nil || seen[ref.Replica] {
				return fmt.Errorf("reference %d missing or from a duplicate replica", i)
			}
			seen[ref.Replica] = true
			if ref.Client != rp.Client || ref.ClientSeq != rp.ClientSeq || ref.Seq != rp.Seq ||
				ref.Speculative != rp.Speculative || ref.History != rp.History {
				return fmt.Errorf("reference %d answers a different request state", i)
			}
			if string(ref.Result) != string(p.References[0].Result) {
				return fmt.Errorf("references disagree among themselves")
			}
			if string(ref.Result) == string(core.DuplicateResult) {
				return fmt.Errorf("reference %d result is the dedup sentinel, not an application result", i)
			}
			if !v.VerifySig(ref.Replica, ref.Digest(), ref.Sig) {
				return fmt.Errorf("reference %d signature does not verify", i)
			}
		}
		if string(rp.Result) == string(p.References[0].Result) {
			return fmt.Errorf("culprit result matches the references — no divergence")
		}
		return nil
	}
	return fmt.Errorf("unknown proof kind %q", p.Proof)
}

// String is the one-line log form.
func (p *Proof) String() string {
	s := fmt.Sprintf("%s: replica %d", p.Proof, p.Culprit)
	if p.First != nil {
		s += fmt.Sprintf(" [%s v%d seq%d]", p.First.Kind, p.First.View, p.First.Seq)
	}
	if p.Detail != "" {
		s += " — " + p.Detail
	}
	return s
}
