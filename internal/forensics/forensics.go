// Package forensics is the accountability tier of the testbed: an
// auditor that watches the delivery stream of a running cluster and
// turns retained signature claims plus traffic statistics into (a)
// cryptographically verifiable misbehavior proofs and (b) suspicion
// scores for behaviors that signatures cannot pin down.
//
// The auditor taps message delivery (sim.Network.SetTap on the
// simulator, a handler wrapper on real TCP), extracts each message's
// crypto.SigClaims, and keeps a bounded evidence table keyed by
// (signer, kind, view, seq). Conflicting validly-signed digests at one
// key become equivocation proofs; invalid claims become forged-sig
// proofs blaming the transport sender; excessive identical deliveries
// become replay proofs; conflicting signed replies for one request
// become divergent-result proofs. Withholding and delaying leave no
// signature trail — the classic omission-fault attribution gap — so
// they are scored, never proved: per-time-bucket traffic and delivery
// lag against honest-peer baselines, with guards that keep crashes,
// partitions, and delay spikes from indicting honest replicas.
package forensics

import (
	"sync"
	"time"

	"bftkit/internal/core"
	"bftkit/internal/crypto"
	"bftkit/internal/obsv"
	"bftkit/internal/types"
)

// Defaults; every one is overridable through Options.
const (
	// DefaultReplayThreshold is the per-receiver delivery count of one
	// identical claim beyond which the auditor calls replay. The
	// simulator duplicates at most one extra copy per send, and honest
	// retransmission paths (checkpoints, view changes, state transfer)
	// are excluded from replay tracking entirely, so the bound only has
	// to clear protocol-level re-sends of ordering traffic.
	DefaultReplayThreshold = 8
	// DefaultReplayWindow is the minimum span the repeats must cover:
	// a burst inside one delivery tick (duplication, fan-out) is not a
	// replay campaign.
	DefaultReplayWindow = 50 * time.Millisecond
	// DefaultMaxTracked bounds every evidence table (slots, replay
	// counters, reply groups, lag groups); oldest entries fall off
	// first, so long runs audit a sliding window.
	DefaultMaxTracked = 1 << 14
	// DefaultMaxProofs caps retained proofs per (culprit, kind): the
	// first few convict, the rest are repetition.
	DefaultMaxProofs = 4
	// DefaultAccuseThreshold is the suspicion score at or above which a
	// replica is formally accused. Scores are fractions of run octiles
	// (see score.go), so 0.75 demands misbehavior across at least 6 of
	// 8 buckets — windowed faults (a partition, a delay spike) cannot
	// reach it.
	DefaultAccuseThreshold = 0.75
	// DefaultLagFloor is the absolute per-message delivery lag below
	// which a replica is never considered slow; the effective floor
	// adapts upward on jittery networks (see score.go).
	DefaultLagFloor = 2 * time.Millisecond

	// scoreBuckets is the octile count scores are computed over, and
	// binWidth the raw accumulation grain they are resampled from.
	scoreBuckets = 8
	binWidth     = 20 * time.Millisecond
)

// Options configures an Auditor.
type Options struct {
	// N is the replica count; replicas are 0..N-1. Required.
	N int
	// F is the fault threshold (divergent-result proofs need f+1
	// matching references). Required.
	F int
	// Keys verifies signature claims. Required — the auditor is a
	// public-key-only party and never touches an Authority, so its
	// verifications do not perturb the run's crypto cost accounting.
	Keys crypto.KeyRing
	// Tracer, when set, receives live proof counters and suspicion
	// gauges for the Prometheus surface.
	Tracer *obsv.Tracer

	ReplayThreshold int
	ReplayWindow    time.Duration
	MaxTracked      int
	MaxProofs       int
	AccuseThreshold float64
	LagFloor        time.Duration

	// AsymmetricRoles marks a deployment whose protocol gives replicas
	// structurally unequal traffic roles: an active-replica reduction
	// keeps f spares passive (CheapBFT — and the benched set rotates
	// across views), a tree topology concentrates relaying in interior
	// nodes (Kauri), a chain pipelines through hops (chained
	// replication). The peer-median traffic baseline cannot distinguish
	// a benched or starved replica from a withholder there, so
	// withholding evidence is still scored but never escalates to a
	// formal accusation; only delay evidence and proofs accuse.
	AsymmetricRoles bool

	// LocalNode, when non-nil, is the replica at whose vantage this
	// auditor runs (a node-local deployment tapping only its own inbound
	// stream, like bftnode -forensics). That replica's own sends never
	// traverse its inbound path, so it is structurally unobservable:
	// it is excluded from omission scoring and from the peer-traffic
	// baseline, or the auditor would frame its host as a withholder.
	// Cluster-wide auditors (harness, chaos) observe every node's
	// inbound stream and leave this nil.
	LocalNode *types.NodeID
}

func (o *Options) fill() {
	if o.ReplayThreshold == 0 {
		o.ReplayThreshold = DefaultReplayThreshold
	}
	if o.ReplayWindow == 0 {
		o.ReplayWindow = DefaultReplayWindow
	}
	if o.MaxTracked == 0 {
		o.MaxTracked = DefaultMaxTracked
	}
	if o.MaxProofs == 0 {
		o.MaxProofs = DefaultMaxProofs
	}
	if o.AccuseThreshold == 0 {
		o.AccuseThreshold = DefaultAccuseThreshold
	}
	if o.LagFloor == 0 {
		o.LagFloor = DefaultLagFloor
	}
}

// replyCarrier is implemented by core.ReplyMsg (structurally, like
// obsv.Slotted): it exposes the signed reply a message delivers.
type replyCarrier interface {
	ReplyPayload() *types.Reply
}

// slotKey identifies one replica's claim slot: what equivocation
// conflicts on.
type slotKey struct {
	signer types.NodeID
	kind   string
	view   types.View
	seq    types.SeqNum
}

// slotClaim is the first valid claim retained for a slotKey.
type slotClaim struct {
	ev      Evidence
	flagged bool
}

// claimKey identifies one exact (signer, digest, signature) claim
// delivered to one receiver — the unit replay is counted on.
type claimKey struct {
	id types.Digest
	to types.NodeID
}

// replayState tracks repeated deliveries of one claim to one receiver.
type replayState struct {
	ev      Evidence
	count   int
	flagged bool
}

// replyEv retains one replica's first signed reply for a request.
type replyEv struct {
	reply types.Reply
	at    time.Duration
}

// lagGroup collects first-delivery times of one (kind, view, seq)
// broadcast at one receiver, per sender: the peer baseline delay
// scoring compares against.
type lagGroup struct {
	first map[types.NodeID]time.Duration
}

type groupKey struct {
	kind string
	view types.View
	seq  types.SeqNum
	to   types.NodeID
}

type proofCountKey struct {
	culprit types.NodeID
	kind    string
}

// window is one known-administrative downtime span of a replica.
type window struct {
	node     types.NodeID
	from, to time.Duration
}

// Auditor is the live accountability monitor. All methods are safe for
// concurrent use (the TCP harness delivers from many event loops).
type Auditor struct {
	mu  sync.Mutex
	opt Options

	started  bool
	start    time.Duration
	last     time.Duration
	verified map[types.Digest]bool // claim id → sig validity memo

	slots     map[slotKey]*slotClaim
	slotOrder []slotKey

	replay      map[claimKey]*replayState
	replayOrder []claimKey

	replies    map[types.RequestKey]map[types.NodeID]*replyEv
	replyOrder []types.RequestKey
	replyDone  map[types.RequestKey]bool

	lags     map[groupKey]*lagGroup
	lagOrder []groupKey

	// sentBins[node] maps bin index (at/binWidth) to delivered-message
	// count attributed to that sender; phaseSent is the per-phase
	// breakdown for the report table.
	sentBins  map[types.NodeID]map[int]int
	phaseSent map[types.NodeID]map[string]int

	downtime []window

	proofs     []*Proof
	proofCount map[proofCountKey]int
}

// New builds an auditor. It panics on a missing key ring or replica
// count, mirroring harness constructors.
func New(opt Options) *Auditor {
	if opt.N <= 0 || len(opt.Keys) == 0 {
		panic("forensics: Options.N and Options.Keys are required")
	}
	opt.fill()
	a := &Auditor{
		opt:        opt,
		verified:   make(map[types.Digest]bool),
		slots:      make(map[slotKey]*slotClaim),
		replay:     make(map[claimKey]*replayState),
		replies:    make(map[types.RequestKey]map[types.NodeID]*replyEv),
		replyDone:  make(map[types.RequestKey]bool),
		lags:       make(map[groupKey]*lagGroup),
		sentBins:   make(map[types.NodeID]map[int]int),
		phaseSent:  make(map[types.NodeID]map[string]int),
		proofCount: make(map[proofCountKey]int),
	}
	for i := 0; i < opt.N; i++ {
		id := types.NodeID(i)
		a.sentBins[id] = make(map[int]int)
		a.phaseSent[id] = make(map[string]int)
	}
	return a
}

// ExcuseDowntime records an administratively-known downtime window
// (an injected crash, an operator restart) for node: score buckets
// overlapping it are not held against the replica. The chaos runner
// feeds its own crash schedule here; genuinely unknown faults
// (partitions, delay spikes) get no excuse and must be absorbed by the
// scoring guards instead.
func (a *Auditor) ExcuseDowntime(node types.NodeID, from, to time.Duration) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.downtime = append(a.downtime, window{node, from, to})
}

// Observe ingests one delivered message. at is delivery time on the
// run's clock, from the transport-level sender, to the receiver.
func (a *Auditor) Observe(at time.Duration, from, to types.NodeID, m types.Message) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.started || at < a.start {
		if !a.started {
			a.start, a.started = at, true
		} else {
			a.start = at
		}
	}
	if at > a.last {
		a.last = at
	}

	kind := m.Kind()
	phase := obsv.PhaseOf(kind)
	if !from.IsClient() && int(from) < a.opt.N {
		a.sentBins[from][int(at/binWidth)]++
		a.phaseSent[from][phase]++
		if obsv.IsProtocolPhase(phase) {
			a.noteLag(at, from, to, kind, m)
		}
	}

	if rc, ok := m.(replyCarrier); ok {
		if rp := rc.ReplyPayload(); rp != nil {
			a.observeReply(at, from, to, rp)
		}
		return
	}

	claimer, ok := m.(crypto.SigClaimer)
	if !ok {
		return
	}
	for _, c := range claimer.SigClaims(from) {
		a.observeClaim(at, from, to, kind, phase, m, c)
	}
}

// observeClaim processes one signature claim of a delivered message.
func (a *Auditor) observeClaim(at time.Duration, from, to types.NodeID, kind, phase string, m types.Message, c crypto.SigClaim) {
	// Unsigned claims carry no evidence (MAC-authenticated deployments:
	// no non-repudiation), and client signers are outside the replica
	// accountability domain — a garbled client signature blames the
	// client, and honest replicas legitimately relay unvalidated client
	// requests (FORWARD), so treating those as replica forgery would
	// frame the relay.
	if len(c.Sig) == 0 || c.Signer.IsClient() {
		return
	}

	id := claimID(c)
	valid, seen := a.verified[id]
	if !seen {
		valid = a.opt.Keys.VerifySig(c.Signer, c.Digest, c.Sig)
		a.verified[id] = valid
		if len(a.verified) > 4*a.opt.MaxTracked {
			a.verified = map[types.Digest]bool{id: valid}
		}
	}

	view, seq := types.View(0), types.SeqNum(0)
	if sl, ok := m.(obsv.Slotted); ok {
		view, seq = sl.Slot()
	}
	ev := Evidence{Signer: c.Signer, Sender: from, To: to, Kind: kind,
		View: view, Seq: seq, Digest: c.Digest, Sig: append([]byte(nil), c.Sig...), At: at}

	if !valid {
		a.emit(&Proof{Proof: ProofForgedSig, Culprit: from, At: at,
			Detail: "claim under " + kind + " does not verify for claimed signer", First: &ev})
		return
	}

	// Equivocation: two different validly-signed digests in one slot.
	// Only ordering-phase slots are uniqueness-bound; checkpoint,
	// view-change, and recovery kinds may legitimately recur or vary.
	if _, ok := m.(obsv.Slotted); ok && obsv.IsProtocolPhase(phase) {
		k := slotKey{c.Signer, kind, view, seq}
		if fc, ok := a.slots[k]; ok {
			if fc.ev.Digest != c.Digest && !fc.flagged {
				fc.flagged = true
				first := fc.ev
				a.emit(&Proof{Proof: ProofEquivocation, Culprit: c.Signer, At: at,
					Detail: "conflicting signed " + kind + " digests in one slot",
					First:  &first, Second: &ev})
			}
		} else {
			if len(a.slots) >= a.opt.MaxTracked {
				delete(a.slots, a.slotOrder[0])
				a.slotOrder = a.slotOrder[1:]
			}
			a.slots[k] = &slotClaim{ev: ev}
			a.slotOrder = append(a.slotOrder, k)
		}

		// Replay: the same signer pushing the same signed ordering
		// message at the same receiver far beyond duplication bounds.
		// Restricted to signer==sender so relays (chain hops carrying
		// upstream endorsements) are never miscounted.
		if c.Signer == from {
			ck := claimKey{id, to}
			rs, ok := a.replay[ck]
			if !ok {
				if len(a.replay) >= a.opt.MaxTracked {
					delete(a.replay, a.replayOrder[0])
					a.replayOrder = a.replayOrder[1:]
				}
				rs = &replayState{ev: ev}
				a.replay[ck] = rs
				a.replayOrder = append(a.replayOrder, ck)
			}
			rs.count++
			if !rs.flagged && rs.count >= a.opt.ReplayThreshold && at-rs.ev.At >= a.opt.ReplayWindow {
				rs.flagged = true
				first := rs.ev
				a.emit(&Proof{Proof: ProofReplay, Culprit: from, At: at,
					Detail: "identical signed " + kind + " re-delivered past any retransmission bound",
					First:  &first, ReplayCount: rs.count, ReplayUntil: at})
			}
		}
	}
}

// observeReply processes a signed reply: forged-signature screening
// plus the divergent-result cross-check against other replicas'
// replies to the same request.
func (a *Auditor) observeReply(at time.Duration, from, to types.NodeID, rp *types.Reply) {
	if len(rp.Sig) == 0 || rp.Replica.IsClient() {
		return
	}
	c := crypto.SigClaim{Signer: rp.Replica, Digest: rp.Digest(), Sig: rp.Sig}
	id := claimID(c)
	valid, seen := a.verified[id]
	if !seen {
		valid = a.opt.Keys.VerifySig(c.Signer, c.Digest, c.Sig)
		a.verified[id] = valid
	}
	if !valid {
		ev := Evidence{Signer: rp.Replica, Sender: from, To: to, Kind: "REPLY",
			View: rp.View, Seq: rp.Seq, Digest: c.Digest, Sig: append([]byte(nil), rp.Sig...), At: at}
		a.emit(&Proof{Proof: ProofForgedSig, Culprit: from, At: at,
			Detail: "reply signature does not verify for claimed replica", First: &ev})
		return
	}

	// The runtime's dedup sentinel is an execution artifact, not an
	// application result: when a batch is re-proposed across a view
	// change, every honest replica legitimately emits both the real
	// result and a later DuplicateResult for the same request, and
	// delivery jitter decides which the auditor observes first. Sentinel
	// replies therefore carry no divergence signal (their signatures
	// were still screened above).
	if string(rp.Result) == string(core.DuplicateResult) {
		return
	}
	key := types.RequestKey{Client: rp.Client, ClientSeq: rp.ClientSeq}
	if a.replyDone[key] {
		return
	}
	group, ok := a.replies[key]
	if !ok {
		if len(a.replies) >= a.opt.MaxTracked {
			old := a.replyOrder[0]
			a.replyOrder = a.replyOrder[1:]
			delete(a.replies, old)
			delete(a.replyDone, old)
		}
		group = make(map[types.NodeID]*replyEv)
		a.replies[key] = group
		a.replyOrder = append(a.replyOrder, key)
	}
	if _, ok := group[rp.Replica]; ok {
		return
	}
	cp := *rp
	cp.Result = append([]byte(nil), rp.Result...)
	cp.Sig = append([]byte(nil), rp.Sig...)
	group[rp.Replica] = &replyEv{reply: cp, at: at}

	// A reply diverges only against f+1 references that answer the
	// same request in the same execution state (Seq, Speculative,
	// History all equal): replicas answering from different sequence
	// points or speculation levels are in legitimate disagreement.
	for i := 0; i < a.opt.N; i++ {
		culprit := types.NodeID(i)
		cev, ok := group[culprit]
		if !ok {
			continue
		}
		var refs []*types.Reply
		for j := 0; j < a.opt.N; j++ {
			other := types.NodeID(j)
			oev, ok := group[other]
			if !ok || other == culprit {
				continue
			}
			o := &oev.reply
			if o.Seq != cev.reply.Seq || o.Speculative != cev.reply.Speculative || o.History != cev.reply.History {
				continue
			}
			if string(o.Result) == string(cev.reply.Result) {
				refs = nil
				break // culprit agrees with someone: not divergent yet
			}
			if len(refs) == 0 || string(refs[0].Result) == string(o.Result) {
				refs = append(refs, o)
			}
		}
		if len(refs) >= a.opt.F+1 {
			a.replyDone[key] = true
			cr := cev.reply
			a.emit(&Proof{Proof: ProofDivergentResult, Culprit: culprit, At: at,
				Detail: "signed result conflicts with f+1 matching signed replies",
				Reply:  &cr, References: refs[:a.opt.F+1]})
			return
		}
	}
}

// noteLag records one delivery into its broadcast lag group.
func (a *Auditor) noteLag(at time.Duration, from, to types.NodeID, kind string, m types.Message) {
	sl, ok := m.(obsv.Slotted)
	if !ok {
		return
	}
	view, seq := sl.Slot()
	k := groupKey{kind, view, seq, to}
	g, ok := a.lags[k]
	if !ok {
		if len(a.lags) >= a.opt.MaxTracked {
			delete(a.lags, a.lagOrder[0])
			a.lagOrder = a.lagOrder[1:]
		}
		g = &lagGroup{first: make(map[types.NodeID]time.Duration)}
		a.lags[k] = g
		a.lagOrder = append(a.lagOrder, k)
	}
	if _, ok := g.first[from]; !ok {
		g.first[from] = at
	}
}

// emit appends a proof, subject to the per-(culprit, kind) cap, and
// feeds the live tracer counter.
func (a *Auditor) emit(p *Proof) {
	k := proofCountKey{p.Culprit, p.Proof}
	if a.proofCount[k] >= a.opt.MaxProofs {
		return
	}
	a.proofCount[k]++
	a.proofs = append(a.proofs, p)
	if a.opt.Tracer != nil {
		a.opt.Tracer.ForensicsProof(p.Proof)
	}
}

// Proofs returns the retained proofs in emission order.
func (a *Auditor) Proofs() []*Proof {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]*Proof(nil), a.proofs...)
}

// claimID collapses one (signer, digest, sig) claim to a table key.
func claimID(c crypto.SigClaim) types.Digest {
	var h types.Hasher
	h.Str("forensics-claim").U64(uint64(c.Signer)).Digest(c.Digest).Bytes(c.Sig)
	return h.Sum()
}
