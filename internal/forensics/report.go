package forensics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"bftkit/internal/types"
)

// Report is the auditor's verdict over an observed run: every retained
// proof, every replica's suspicion score, and the resulting accusation
// list. It is the payload of bftnode's /forensics endpoint, the chaos
// fuzzer's *.forensics.json evidence bundles, and bftbench's verdict
// table.
type Report struct {
	N     int           `json:"n"`
	F     int           `json:"f"`
	Start time.Duration `json:"start"`
	End   time.Duration `json:"end"`

	Proofs []*Proof `json:"proofs,omitempty"`
	Scores []Score  `json:"scores"`
	// Accused lists replicas either convicted by a proof or scoring at
	// or above the accusation threshold, ascending.
	Accused []types.NodeID `json:"accused,omitempty"`

	// PhaseTraffic is the per-replica per-phase delivered-message count
	// the scores were derived from, for the verdict table.
	PhaseTraffic map[types.NodeID]map[string]int `json:"phase_traffic,omitempty"`
}

// Report snapshots the auditor's verdict as of end (use the cluster
// clock's now for a live snapshot, or the run's end time after it).
// It also pushes final suspicion gauges to the tracer, when one is
// attached. Safe to call repeatedly.
func (a *Auditor) Report(end time.Duration) *Report {
	a.mu.Lock()
	defer a.mu.Unlock()
	if end < a.last {
		end = a.last
	}
	r := &Report{
		N: a.opt.N, F: a.opt.F,
		Start: a.start, End: end,
		Proofs:       append([]*Proof(nil), a.proofs...),
		Scores:       a.scores(end),
		PhaseTraffic: make(map[types.NodeID]map[string]int, a.opt.N),
	}
	for id, phases := range a.phaseSent {
		cp := make(map[string]int, len(phases))
		for p, n := range phases {
			cp[p] = n
		}
		r.PhaseTraffic[id] = cp
	}
	for _, s := range r.Scores {
		if s.Accused {
			r.Accused = append(r.Accused, s.Node)
		}
		if a.opt.Tracer != nil {
			a.opt.Tracer.SetSuspicion(s.Node, s.Suspicion)
		}
	}
	sort.Slice(r.Accused, func(i, j int) bool { return r.Accused[i] < r.Accused[j] })
	return r
}

// Clean reports whether the verdict holds nobody responsible: no
// proofs, no accusations. The chaos false-positive guard asserts Clean
// on every zero-Byzantine schedule.
func (r *Report) Clean() bool { return len(r.Proofs) == 0 && len(r.Accused) == 0 }

// WriteJSON writes the evidence bundle to path, pretty-printed.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WriteTable renders the verdict table: one row per replica with its
// scores and standing, then one row per proof.
func (r *Report) WriteTable(w io.Writer) {
	fmt.Fprintf(w, "forensics verdict (n=%d f=%d, window %v..%v)\n", r.N, r.F,
		r.Start.Round(time.Millisecond), r.End.Round(time.Millisecond))
	fmt.Fprintf(w, "  %-8s %-10s %-8s %-8s %-9s %s\n",
		"replica", "suspicion", "withhold", "delay", "standing", "note")
	for _, s := range r.Scores {
		standing := "honest"
		if s.Accused {
			standing = "ACCUSED"
		}
		fmt.Fprintf(w, "  %-8d %-10.2f %-8.2f %-8.2f %-9s %s\n",
			s.Node, s.Suspicion, s.Withhold, s.Delay, standing, s.Note)
	}
	if len(r.Proofs) == 0 {
		fmt.Fprintf(w, "  no misbehavior proofs\n")
		return
	}
	for _, p := range r.Proofs {
		fmt.Fprintf(w, "  proof: %s\n", p)
	}
}
