package forensics

// Suspicion scoring: withholding and delaying leave no signature
// evidence (an omission is not attributable — the replica can always
// claim the network ate its messages), so the auditor grades them
// statistically against honest-peer baselines. The design constraint is
// the false-accusation guard: a crash, a partition, or a delay spike
// hits a replica in a bounded *time window*, while a Byzantine
// withholder or delayer misbehaves for the whole run. Scores are
// therefore fractions of run octiles in which the replica looked bad,
// and the accusation threshold (default 6 of 8 octiles) is out of reach
// for windowed faults. Known-administrative downtime (the chaos
// runner's own crash schedule) is excused outright; everything else
// must be absorbed by the octile structure.

import (
	"sort"
	"time"

	"bftkit/internal/types"
)

// Score is one replica's suspicion summary.
type Score struct {
	Node types.NodeID `json:"node"`
	// Withhold is the fraction of active run octiles in which the
	// replica's delivered-message count fell below a quarter of the
	// peer median. 1.0 = silent (or vote-silent) all run.
	Withhold float64 `json:"withhold"`
	// Delay is the fraction of measurable run octiles in which the
	// replica's median delivery lag behind its peers' broadcast of the
	// same slot exceeded the adaptive lag floor.
	Delay float64 `json:"delay"`
	// Suspicion is the score the accusation threshold applies to.
	Suspicion float64 `json:"suspicion"`
	// Accused marks Suspicion >= the accusation threshold over enough
	// evidence. Proof-convicted replicas are accused regardless.
	Accused bool `json:"accused"`
	// Note explains the verdict in one phrase.
	Note string `json:"note,omitempty"`
}

// minBucketMsgs is the peer-median delivered-message count below which
// an octile carries no withholding signal (nothing much was happening).
const minBucketMsgs = 5

// minLagSamples is the per-octile lag-sample count below which an
// octile carries no delay signal for a replica.
const minLagSamples = 4

// minConsidered is the least number of evidence-bearing octiles a
// formal accusation may rest on.
const minConsidered = 4

// scores computes every replica's Score over [start, end]. Caller holds
// a.mu.
func (a *Auditor) scores(end time.Duration) []Score {
	start := a.start
	if end <= start {
		end = start + 1
	}
	span := end - start
	octile := func(at time.Duration) int {
		o := int((at - start) * scoreBuckets / span)
		if o < 0 {
			o = 0
		}
		if o >= scoreBuckets {
			o = scoreBuckets - 1
		}
		return o
	}
	excused := func(node types.NodeID, o int) bool {
		bFrom := start + span*time.Duration(o)/scoreBuckets
		bTo := start + span*time.Duration(o+1)/scoreBuckets
		for _, w := range a.downtime {
			if w.node == node && w.from < bTo && w.to > bFrom {
				return true
			}
		}
		return false
	}

	// Per-octile delivered-message counts, resampled from the raw bins.
	traffic := make([][]int, a.opt.N) // [node][octile]
	for i := range traffic {
		traffic[i] = make([]int, scoreBuckets)
		for bin, n := range a.sentBins[types.NodeID(i)] {
			traffic[i][octile(time.Duration(bin)*binWidth)] += n
		}
	}

	// Per-octile lag samples per node, plus the global absolute-lag
	// pool the adaptive floor derives from.
	lagSamples := make([][][]time.Duration, a.opt.N) // [node][octile][]lag
	for i := range lagSamples {
		lagSamples[i] = make([][]time.Duration, scoreBuckets)
	}
	var absPool []time.Duration
	for _, k := range a.lagOrder {
		g := a.lags[k]
		if g == nil || len(g.first) < 3 {
			continue
		}
		times := make([]time.Duration, 0, len(g.first))
		for _, t := range g.first {
			times = append(times, t)
		}
		sort.Slice(times, func(x, y int) bool { return times[x] < times[y] })
		med := times[len(times)/2]
		o := octile(med)
		for node, t := range g.first {
			if int(node) >= a.opt.N {
				continue
			}
			lag := t - med
			lagSamples[node][o] = append(lagSamples[node][o], lag)
			if lag >= 0 {
				absPool = append(absPool, lag)
			} else {
				absPool = append(absPool, -lag)
			}
		}
	}
	lagFloor := a.opt.LagFloor
	if len(absPool) > 0 {
		sort.Slice(absPool, func(x, y int) bool { return absPool[x] < absPool[y] })
		if adaptive := 4 * absPool[len(absPool)/2]; adaptive > lagFloor {
			lagFloor = adaptive
		}
	}

	convicted := make(map[types.NodeID]bool)
	for _, p := range a.proofs {
		convicted[p.Culprit] = true
	}

	local := func(id types.NodeID) bool {
		return a.opt.LocalNode != nil && *a.opt.LocalNode == id
	}

	out := make([]Score, a.opt.N)
	for i := 0; i < a.opt.N; i++ {
		node := types.NodeID(i)
		s := Score{Node: node}
		if local(node) {
			// The auditor's host: its own sends never reach this
			// vantage's inbound stream, so silence here is an artifact,
			// not evidence.
			s.Note = "local vantage: own traffic unobservable"
			if convicted[node] {
				s.Accused = true
				s.Note = "convicted by proof"
			}
			out[i] = s
			continue
		}

		// Withholding: compare each octile's traffic to the peer median.
		wConsidered, wSuspicious := 0, 0
		for o := 0; o < scoreBuckets; o++ {
			counts := make([]int, 0, a.opt.N)
			for j := 0; j < a.opt.N; j++ {
				if local(types.NodeID(j)) {
					continue // a phantom zero would drag the median down
				}
				counts = append(counts, traffic[j][o])
			}
			sort.Ints(counts)
			med := counts[len(counts)/2]
			if med < minBucketMsgs || excused(node, o) {
				continue
			}
			wConsidered++
			if traffic[i][o]*4 < med {
				wSuspicious++
			}
		}
		if wConsidered > 0 {
			s.Withhold = float64(wSuspicious) / float64(wConsidered)
		}

		// Delay: median lag per octile against the adaptive floor.
		dConsidered, dLate := 0, 0
		for o := 0; o < scoreBuckets; o++ {
			samples := lagSamples[i][o]
			if len(samples) < minLagSamples || excused(node, o) {
				continue
			}
			sort.Slice(samples, func(x, y int) bool { return samples[x] < samples[y] })
			dConsidered++
			if samples[len(samples)/2] > lagFloor {
				dLate++
			}
		}
		if dConsidered > 0 {
			s.Delay = float64(dLate) / float64(dConsidered)
		}

		s.Suspicion = s.Withhold
		if s.Delay > s.Suspicion {
			s.Suspicion = s.Delay
		}
		// Under asymmetric replica roles a silent replica may simply be
		// benched or starved, so withholding evidence informs the gauge
		// but cannot convict; the accusation gate then rests on delay
		// evidence alone.
		accuse, evidence := s.Suspicion, wConsidered+dConsidered
		if a.opt.AsymmetricRoles {
			accuse, evidence = s.Delay, dConsidered
		}
		switch {
		case convicted[node]:
			s.Accused = true
			s.Note = "convicted by proof"
		case accuse >= a.opt.AccuseThreshold && evidence >= minConsidered:
			s.Accused = true
			if !a.opt.AsymmetricRoles && s.Withhold >= s.Delay {
				s.Note = "persistently silent versus peer baseline"
			} else {
				s.Note = "persistently late versus peer baseline"
			}
		case a.opt.AsymmetricRoles && s.Withhold >= a.opt.AccuseThreshold:
			s.Note = "silent, but replica roles are asymmetric — possibly benched or starved"
		}
		out[i] = s
	}
	return out
}
