package forensics

import (
	"testing"
	"time"

	"bftkit/internal/core"
	"bftkit/internal/crypto"
	"bftkit/internal/types"
)

// signedReply builds one replica's validly-signed reply.
func signedReply(auth *crypto.Authority, replica types.NodeID, seq types.SeqNum, result string) *core.ReplyMsg {
	rp := &types.Reply{
		Replica: replica, Client: types.ClientIDBase, ClientSeq: 1,
		View: 0, Seq: seq, Result: []byte(result),
	}
	rp.Sig = auth.Signer(replica).Sign(rp.Digest())
	return &core.ReplyMsg{R: rp}
}

func TestDivergentResultProof(t *testing.T) {
	a, auth := testAuditor(t, Options{})
	client := types.ClientIDBase
	// Replicas 1..3 agree; replica 0 signed a different result.
	for i := 1; i < 4; i++ {
		a.Observe(time.Duration(i)*time.Millisecond, types.NodeID(i), client, signedReply(auth, types.NodeID(i), 9, "ok"))
	}
	a.Observe(5*time.Millisecond, 0, client, signedReply(auth, 0, 9, "tampered"))
	ps := a.Proofs()
	if len(ps) != 1 || ps[0].Proof != ProofDivergentResult || ps[0].Culprit != 0 {
		t.Fatalf("want one divergent-result proof against 0, got %v", ps)
	}
	if err := ps[0].Verify(auth.KeyRing(4), 1); err != nil {
		t.Fatalf("proof does not verify: %v", err)
	}
}

func TestDivergenceNeedsMatchingState(t *testing.T) {
	a, auth := testAuditor(t, Options{})
	client := types.ClientIDBase
	for i := 1; i < 4; i++ {
		a.Observe(time.Duration(i)*time.Millisecond, types.NodeID(i), client, signedReply(auth, types.NodeID(i), 9, "ok"))
	}
	// Replica 0 answered from a different sequence point: legitimate
	// disagreement (a lagging replica), never a proof.
	a.Observe(5*time.Millisecond, 0, client, signedReply(auth, 0, 8, "stale"))
	if got := len(a.Proofs()); got != 0 {
		t.Fatalf("cross-seq replies must not convict, got %v", a.Proofs())
	}
}

func TestDivergenceCulpritAgreesWithSomeone(t *testing.T) {
	a, auth := testAuditor(t, Options{N: 7, F: 2})
	client := types.ClientIDBase
	// A replica whose result matches any already-observed peer is never
	// the divergence culprit. An interleaved 3-vs-3 split (out-of-model:
	// more than f liars) keeps every replica allied before the opposing
	// side reaches f+1, so the auditor bails on everyone rather than
	// guess which side is lying.
	results := []string{"ok", "other", "ok", "other", "ok", "other"}
	for i, res := range results {
		id := types.NodeID(i + 1)
		a.Observe(time.Duration(i+1)*time.Millisecond, id, client, signedReply(auth, id, 9, res))
	}
	if got := len(a.Proofs()); got != 0 {
		t.Fatalf("lockstep split replies must not convict, got %v", a.Proofs())
	}
}

func TestDuplicateSentinelNeverDiverges(t *testing.T) {
	a, auth := testAuditor(t, Options{})
	client := types.ClientIDBase
	// Across a view change every honest replica legitimately signs both
	// the real result and a later dedup sentinel for the same request;
	// delivery jitter decides which the auditor sees first. Neither
	// direction may convict.
	for i := 1; i < 4; i++ {
		a.Observe(time.Duration(i)*time.Millisecond, types.NodeID(i), client, signedReply(auth, types.NodeID(i), 9, "ok"))
	}
	a.Observe(5*time.Millisecond, 0, client, signedReply(auth, 0, 9, string(core.DuplicateResult)))
	if got := len(a.Proofs()); got != 0 {
		t.Fatalf("sentinel reply must not convict, got %v", a.Proofs())
	}
	// And a hand-built proof resting on a sentinel must fail offline
	// verification, even with valid signatures all around.
	refs := make([]*types.Reply, 0, 2)
	for i := 1; i < 3; i++ {
		refs = append(refs, signedReply(auth, types.NodeID(i), 9, "ok").R)
	}
	p := &Proof{
		Proof:      ProofDivergentResult,
		Culprit:    0,
		Reply:      signedReply(auth, 0, 9, string(core.DuplicateResult)).R,
		References: refs,
	}
	if err := p.Verify(auth.KeyRing(4), 1); err == nil {
		t.Fatalf("sentinel-based proof verified")
	}
}

func TestForgedReplySig(t *testing.T) {
	a, auth := testAuditor(t, Options{})
	m := signedReply(auth, 1, 9, "ok")
	m.R.Sig[0] ^= 0xff
	a.Observe(1*time.Millisecond, 1, types.ClientIDBase, m)
	ps := a.Proofs()
	if len(ps) != 1 || ps[0].Proof != ProofForgedSig || ps[0].Culprit != 1 {
		t.Fatalf("want forged-sig proof against sender 1, got %v", ps)
	}
	if err := ps[0].Verify(auth.KeyRing(4), 1); err != nil {
		t.Fatalf("proof does not verify: %v", err)
	}
}
