package forensics

import (
	"testing"
	"time"

	"bftkit/internal/crypto"
	"bftkit/internal/protocols/pbft"
	"bftkit/internal/types"
)

const testSeed = 7

// testAuditor builds an auditor plus the signing authority its claims
// come from. n=4, f=1 unless overridden.
func testAuditor(t *testing.T, opt Options) (*Auditor, *crypto.Authority) {
	t.Helper()
	auth := crypto.NewAuthority(testSeed)
	if opt.N == 0 {
		opt.N = 4
	}
	if opt.F == 0 {
		opt.F = 1
	}
	opt.Keys = auth.KeyRing(opt.N)
	return New(opt), auth
}

// testAuth is the deterministic signing authority tests draw keys from.
func testAuth(t *testing.T) *crypto.Authority {
	t.Helper()
	return crypto.NewAuthority(testSeed)
}

// testRing is the public-key-only view an offline third party holds.
func testRing(t *testing.T) crypto.KeyRing {
	t.Helper()
	return crypto.NewAuthority(testSeed).KeyRing(8)
}

// preprepare builds a validly-signed PRE-PREPARE from the given signer.
func preprepare(auth *crypto.Authority, signer types.NodeID, view types.View, seq types.SeqNum, payload string) *pbft.PrePrepareMsg {
	var h types.Hasher
	h.Str(payload)
	m := &pbft.PrePrepareMsg{View: view, Seq: seq, Digest: h.Sum()}
	m.Sig = auth.Signer(signer).Sign(m.SigDigest())
	return m
}

func proofKinds(a *Auditor) map[string]int {
	out := map[string]int{}
	for _, p := range a.Proofs() {
		out[p.Proof]++
	}
	return out
}

// TestEquivocationCases is the edge-case table: only two validly-signed
// conflicting digests in the SAME slot convict.
func TestEquivocationCases(t *testing.T) {
	cases := []struct {
		name      string
		second    func(auth *crypto.Authority) *pbft.PrePrepareMsg
		wantProof bool
	}{
		{"conflicting digest same slot", func(auth *crypto.Authority) *pbft.PrePrepareMsg {
			return preprepare(auth, 0, 1, 5, "payload-B")
		}, true},
		{"same digest twice is a duplicate", func(auth *crypto.Authority) *pbft.PrePrepareMsg {
			return preprepare(auth, 0, 1, 5, "payload-A")
		}, false},
		{"different view is a different slot", func(auth *crypto.Authority) *pbft.PrePrepareMsg {
			return preprepare(auth, 0, 2, 5, "payload-B")
		}, false},
		{"different seq is a different slot", func(auth *crypto.Authority) *pbft.PrePrepareMsg {
			return preprepare(auth, 0, 1, 6, "payload-B")
		}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, auth := testAuditor(t, Options{})
			first := preprepare(auth, 0, 1, 5, "payload-A")
			a.Observe(10*time.Millisecond, 0, 1, first)
			a.Observe(20*time.Millisecond, 0, 2, tc.second(auth))
			got := proofKinds(a)[ProofEquivocation]
			if tc.wantProof && got != 1 {
				t.Fatalf("want one equivocation proof, got %d (%v)", got, a.Proofs())
			}
			if !tc.wantProof && got != 0 {
				t.Fatalf("want no equivocation proof, got %d: %v", got, a.Proofs())
			}
			if tc.wantProof {
				p := a.Proofs()[0]
				if p.Culprit != 0 {
					t.Fatalf("culprit = %d, want 0", p.Culprit)
				}
				if err := p.Verify(auth.KeyRing(4), 1); err != nil {
					t.Fatalf("emitted proof does not verify: %v", err)
				}
			}
		})
	}
}

// TestEquivocationDifferentSignersNoProof: two leaders proposing in the
// same slot across a view change is consensus business, not forgery.
func TestEquivocationDifferentSigners(t *testing.T) {
	a, auth := testAuditor(t, Options{})
	a.Observe(10*time.Millisecond, 0, 1, preprepare(auth, 0, 1, 5, "payload-A"))
	a.Observe(20*time.Millisecond, 1, 2, preprepare(auth, 1, 1, 5, "payload-B"))
	if got := len(a.Proofs()); got != 0 {
		t.Fatalf("want no proofs across signers, got %v", a.Proofs())
	}
}

func TestForgedSigProof(t *testing.T) {
	a, auth := testAuditor(t, Options{})
	m := preprepare(auth, 0, 1, 5, "payload-A")
	m.Sig[0] ^= 0xff // garble
	// Replica 2 relays the garbled message: the SENDER is the culprit.
	a.Observe(10*time.Millisecond, 2, 1, m)
	ps := a.Proofs()
	if len(ps) != 1 || ps[0].Proof != ProofForgedSig {
		t.Fatalf("want one forged-sig proof, got %v", ps)
	}
	if ps[0].Culprit != 2 {
		t.Fatalf("culprit = %d, want sender 2", ps[0].Culprit)
	}
	if err := ps[0].Verify(auth.KeyRing(4), 1); err != nil {
		t.Fatalf("proof does not verify: %v", err)
	}
}

func TestEmptySigIsNotForgery(t *testing.T) {
	a, auth := testAuditor(t, Options{})
	m := preprepare(auth, 0, 1, 5, "payload-A")
	m.Sig = nil // MAC-mode deployments ship unsigned ordering messages
	a.Observe(10*time.Millisecond, 0, 1, m)
	if got := len(a.Proofs()); got != 0 {
		t.Fatalf("empty sig must not convict, got %v", a.Proofs())
	}
}

func TestReplayProof(t *testing.T) {
	a, auth := testAuditor(t, Options{ReplayThreshold: 4, ReplayWindow: 30 * time.Millisecond})
	m := preprepare(auth, 0, 1, 5, "payload-A")
	// Three deliveries inside one tick: legitimate duplication, no proof.
	for i := 0; i < 3; i++ {
		a.Observe(10*time.Millisecond, 0, 1, m)
	}
	if got := proofKinds(a)[ProofReplay]; got != 0 {
		t.Fatalf("burst inside the window must not convict, got %d", got)
	}
	// Spread repeats past the window to the same receiver: replay.
	a.Observe(50*time.Millisecond, 0, 1, m)
	ps := a.Proofs()
	if len(ps) != 1 || ps[0].Proof != ProofReplay || ps[0].Culprit != 0 {
		t.Fatalf("want one replay proof against 0, got %v", ps)
	}
	if ps[0].ReplayCount < 4 {
		t.Fatalf("replay count = %d, want >= threshold", ps[0].ReplayCount)
	}
	if err := ps[0].Verify(auth.KeyRing(4), 1); err != nil {
		t.Fatalf("proof does not verify: %v", err)
	}
	// Repeats keep arriving: the flagged state caps it at one proof.
	a.Observe(80*time.Millisecond, 0, 1, m)
	if got := proofKinds(a)[ProofReplay]; got != 1 {
		t.Fatalf("replay must flag once per claim, got %d", got)
	}
}

func TestReplayDistinctReceiversNoProof(t *testing.T) {
	a, auth := testAuditor(t, Options{ReplayThreshold: 4, ReplayWindow: 30 * time.Millisecond})
	m := preprepare(auth, 0, 1, 5, "payload-A")
	// A broadcast fan-out delivers the same claim to every peer once:
	// replay is counted per receiver, so no proof.
	for i := 1; i < 4; i++ {
		for j := 0; j < 3; j++ {
			a.Observe(time.Duration(10+40*j)*time.Millisecond, 0, types.NodeID(i), m)
		}
	}
	if got := proofKinds(a)[ProofReplay]; got != 0 {
		t.Fatalf("per-receiver counts below threshold must not convict, got %d", got)
	}
}
