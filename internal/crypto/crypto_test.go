package crypto

import (
	"errors"
	"testing"
	"testing/quick"

	"bftkit/internal/types"
)

func TestSignVerifyRoundTrip(t *testing.T) {
	auth := NewAuthority(1)
	s := auth.Signer(2)
	v := auth.Verifier()
	d := types.DigestBytes([]byte("hello"))
	sig := s.Sign(d)
	if !v.VerifySig(2, d, sig) {
		t.Fatal("own signature must verify")
	}
	if v.VerifySig(3, d, sig) {
		t.Fatal("signature must not verify under another identity")
	}
	d2 := types.DigestBytes([]byte("tampered"))
	if v.VerifySig(2, d2, sig) {
		t.Fatal("signature must not cover a different digest")
	}
}

func TestMACRoundTrip(t *testing.T) {
	auth := NewAuthority(7)
	s := auth.Signer(0)
	v := auth.Verifier()
	d := types.DigestBytes([]byte("m"))
	mac := s.MAC(1, d)
	if !v.VerifyMAC(0, 1, d, mac) {
		t.Fatal("MAC must verify between the key pair")
	}
	// MAC keys are symmetric per pair: the reverse direction verifies
	// too — which is precisely why MACs lack non-repudiation (DC11).
	if !v.VerifyMAC(1, 0, d, mac) {
		t.Fatal("pairwise MAC keys are symmetric")
	}
	if v.VerifyMAC(0, 2, d, mac) {
		t.Fatal("a third party must not verify the tag")
	}
}

func TestAuthVector(t *testing.T) {
	auth := NewAuthority(7)
	s := auth.Signer(1)
	v := auth.Verifier()
	peers := []types.NodeID{0, 1, 2, 3}
	d := types.DigestBytes([]byte("vec"))
	vec := s.AuthVector(d, peers)
	if vec[1] != nil {
		t.Fatal("no self-MAC expected")
	}
	for _, to := range []types.NodeID{0, 2, 3} {
		if !v.VerifyMAC(1, to, d, vec[to]) {
			t.Fatalf("vector entry for %v must verify", to)
		}
	}
}

func TestDeterministicKeys(t *testing.T) {
	a1 := NewAuthority(42)
	a2 := NewAuthority(42)
	d := types.DigestBytes([]byte("d"))
	if !a2.Verifier().VerifySig(5, d, a1.Signer(5).Sign(d)) {
		t.Fatal("same seed must derive the same keys")
	}
	a3 := NewAuthority(43)
	if a3.Verifier().VerifySig(5, d, a1.Signer(5).Sign(d)) {
		t.Fatal("different seeds must derive different keys")
	}
}

func TestCertificateVerify(t *testing.T) {
	auth := NewAuthority(3)
	v := auth.Verifier()
	d := types.DigestBytes([]byte("cert"))
	cert := &Certificate{Digest: d}
	for i := 0; i < 3; i++ {
		cert.Add(types.NodeID(i), auth.Signer(types.NodeID(i)).Sign(d))
	}
	if err := cert.Verify(v, 3); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}
	if err := cert.Verify(v, 4); err == nil {
		t.Fatal("undersized certificate accepted")
	}
	// Duplicate signer must be rejected.
	dup := &Certificate{Digest: d}
	sig := auth.Signer(0).Sign(d)
	dup.Add(0, sig)
	dup.Add(0, sig)
	dup.Add(1, auth.Signer(1).Sign(d))
	if err := dup.Verify(v, 3); err == nil {
		t.Fatal("duplicate signer accepted")
	}
	// Forged component must be rejected.
	forged := &Certificate{Digest: d}
	forged.Add(0, auth.Signer(0).Sign(d))
	forged.Add(1, auth.Signer(2).Sign(d)) // wrong identity
	forged.Add(2, auth.Signer(2).Sign(d))
	if err := forged.Verify(v, 3); err == nil {
		t.Fatal("forged certificate accepted")
	}
}

// TestCertificateVerifyEdgeCases is the table-driven sweep over the
// adversarial certificate shapes the fuzzer-style chaos runs can produce:
// each case pins the exact error identity so refactors of Verify cannot
// silently reorder or weaken a check.
func TestCertificateVerifyEdgeCases(t *testing.T) {
	auth := NewAuthority(17)
	v := auth.Verifier()
	d := types.DigestBytes([]byte("edge"))
	other := types.DigestBytes([]byte("other"))
	sign := func(id types.NodeID, dig types.Digest) []byte {
		return auth.Signer(id).Sign(dig)
	}
	cases := []struct {
		name   string
		build  func() *Certificate
		quorum int
		want   error // nil means the certificate must verify
	}{
		{
			name: "valid quorum",
			build: func() *Certificate {
				c := &Certificate{Digest: d}
				for i := 0; i < 3; i++ {
					c.Add(types.NodeID(i), sign(types.NodeID(i), d))
				}
				return c
			},
			quorum: 3,
		},
		{
			name: "sub-quorum",
			build: func() *Certificate {
				c := &Certificate{Digest: d}
				c.Add(0, sign(0, d))
				c.Add(1, sign(1, d))
				return c
			},
			quorum: 3,
			want:   ErrCertTooSmall,
		},
		{
			name: "duplicate signer counted once",
			build: func() *Certificate {
				// Three entries, but only two distinct identities: the dup
				// must not be double-counted toward the quorum.
				c := &Certificate{Digest: d}
				c.Add(0, sign(0, d))
				c.Add(0, sign(0, d))
				c.Add(1, sign(1, d))
				return c
			},
			quorum: 3,
			want:   ErrCertDuplicate,
		},
		{
			name: "forged signature over correct digest",
			build: func() *Certificate {
				c := &Certificate{Digest: d}
				c.Add(0, sign(0, d))
				c.Add(1, sign(2, d)) // node 2's signature claimed as node 1's
				c.Add(2, sign(2, d))
				return c
			},
			quorum: 3,
			want:   ErrCertBadSig,
		},
		{
			name: "wrong-digest replay",
			build: func() *Certificate {
				// Signatures are genuine but cover a different digest —
				// the replay a cached-certificate fast path must not admit.
				c := &Certificate{Digest: d}
				for i := 0; i < 3; i++ {
					c.Add(types.NodeID(i), sign(types.NodeID(i), other))
				}
				return c
			},
			quorum: 3,
			want:   ErrCertBadSig,
		},
		{
			name:   "empty certificate",
			build:  func() *Certificate { return &Certificate{Digest: d} },
			quorum: 1,
			want:   ErrCertTooSmall,
		},
		{
			name: "nil signature entry",
			build: func() *Certificate {
				c := &Certificate{Digest: d}
				c.Add(0, sign(0, d))
				c.Add(1, nil)
				c.Add(2, sign(2, d))
				return c
			},
			quorum: 3,
			want:   ErrCertBadSig,
		},
		{
			name: "signer/signature shape mismatch",
			build: func() *Certificate {
				c := &Certificate{Digest: d}
				c.Add(0, sign(0, d))
				c.Signers = append(c.Signers, 1) // signer with no signature
				return c
			},
			quorum: 1,
			want:   ErrCertShape,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.build().Verify(v, tc.quorum)
			if tc.want == nil {
				if err != nil {
					t.Fatalf("Verify() = %v, want nil", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("Verify() = %v, want %v", err, tc.want)
			}
		})
	}
}

// TestThresholdSizeBoundary pins the threshold size model at its edges:
// the constant charge is independent of signer count, including the
// degenerate empty certificate, and switching the flag on a populated
// certificate flips only the accounting.
func TestThresholdSizeBoundary(t *testing.T) {
	d := types.DigestBytes([]byte("thr"))
	empty := &Certificate{Digest: d, Threshold: true}
	if got := empty.EncodedSize(); got != SigSize+8 {
		t.Fatalf("empty threshold certificate size = %d, want %d", got, SigSize+8)
	}
	one := &Certificate{Digest: d}
	one.Add(0, make([]byte, SigSize))
	linOne := one.EncodedSize()
	one.Threshold = true
	thrOne := one.EncodedSize()
	if thrOne != SigSize+8 {
		t.Fatalf("1-signer threshold size = %d, want %d", thrOne, SigSize+8)
	}
	if linOne != SigSize+8+8 {
		t.Fatalf("1-signer linear size = %d, want %d", linOne, SigSize+8+8)
	}
	// The crossover: from two signers up, the threshold model is strictly
	// smaller — the property linear protocols buy with it (DC 11).
	big := &Certificate{Digest: d}
	for i := 0; i < 2; i++ {
		big.Add(types.NodeID(i), make([]byte, SigSize))
	}
	lin := big.EncodedSize()
	big.Threshold = true
	if thr := big.EncodedSize(); thr >= lin {
		t.Fatalf("threshold size %d not below linear size %d at 2 signers", thr, lin)
	}
}

func TestCertificateSizeModel(t *testing.T) {
	d := types.DigestBytes([]byte("x"))
	lin := &Certificate{Digest: d}
	thr := &Certificate{Digest: d, Threshold: true}
	for i := 0; i < 10; i++ {
		lin.Add(types.NodeID(i), make([]byte, SigSize))
		thr.Add(types.NodeID(i), make([]byte, SigSize))
	}
	if lin.EncodedSize() <= 10*SigSize {
		t.Fatal("linear certificate must grow with signer count")
	}
	if thr.EncodedSize() != SigSize+8 {
		t.Fatalf("threshold certificate must be constant-size, got %d", thr.EncodedSize())
	}
}

func TestStatsCounting(t *testing.T) {
	auth := NewAuthority(1)
	d := types.DigestBytes([]byte("s"))
	sig := auth.Signer(0).Sign(d)
	auth.Verifier().VerifySig(0, d, sig)
	auth.Signer(0).MAC(1, d)
	s, v, m, _ := auth.Stats.Snapshot()
	if s != 1 || v != 1 || m != 1 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/1", s, v, m)
	}
}

func TestSignVerifyProperty(t *testing.T) {
	auth := NewAuthority(9)
	v := auth.Verifier()
	f := func(id uint8, payload []byte) bool {
		node := types.NodeID(id % 16)
		d := types.DigestBytes(payload)
		return v.VerifySig(node, d, auth.Signer(node).Sign(d))
	}
	cfg := &quick.Config{MaxCount: 25} // ed25519 ops are not free
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
