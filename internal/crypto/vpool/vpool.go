// Package vpool is the parallel signature-verification engine: a worker
// pool that batch-verifies independent Ed25519 signatures across cores,
// a positive-only memo that deduplicates repeated verifications of the
// same (signer, digest, signature) triple, and a bounded LRU that
// remembers fully-verified quorum certificates by (digest, signer set).
// Ed25519 verification is the dominant CPU cost of every signature-based
// protocol in the design space (Bedrock attacks exactly this bottleneck
// with verification parallelism), and BFT traffic re-verifies the same
// bytes constantly — a broadcast is checked once per receiver, a commit
// certificate once per phase it is carried through.
//
// The engine plugs into crypto.Authority via crypto.Engine. Division of
// labor: the crypto package keeps all cost-model accounting (Stats and
// the per-phase observer are charged for every protocol-required check,
// cache hit or not), so installing an engine changes host CPU time only
// — the deterministic virtual metrics the perf snapshots pin are
// bit-identical by construction.
//
// Determinism rule: on the virtual-time simulator the engine runs with
// Workers=0 — every verification is inline and synchronous on the
// calling goroutine, no pool goroutines exist, and results are pure
// functions of the inputs. The worker pool and the async inbound-verify
// stage (transport.Node.SetInboundPrepare feeding VerifyBatch) are
// real-TCP-path features, where wall-clock nondeterminism already rules.
package vpool

import (
	"container/list"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"sync"
	"sync/atomic"

	"bftkit/internal/crypto"
	"bftkit/internal/obsv"
	"bftkit/internal/types"
)

// DefaultCache is the default bound on each cache (entries). With map
// and list overhead an entry costs ~100 bytes, so the two caches
// together stay under ~2 MiB per authority at this bound.
const DefaultCache = 8192

// batchChunk is the number of signatures one worker task verifies; small
// enough to spread a quorum across cores, large enough that the channel
// hop is amortized (an Ed25519 verify is ~50µs, a channel send ~100ns).
const batchChunk = 4

// Options configures an Engine.
type Options struct {
	// Workers is the verification-pool size. 0 means fully synchronous:
	// no goroutines are created and VerifyBatch runs inline on the
	// caller — the mandatory mode on the deterministic simulator.
	Workers int
	// Cache bounds the signature memo and certificate LRU (entries each).
	// <= 0 disables both caches.
	Cache int
	// Tracer receives verify-pool counters and batch-size samples (nil ok).
	Tracer *obsv.Tracer
}

// Stats is a point-in-time snapshot of the engine's own counters. These
// count *mechanism* (work performed vs recalled), intentionally separate
// from crypto.Stats, which counts *protocol-required checks* and is what
// the deterministic cost model reads.
type Stats struct {
	// Performed is raw Ed25519 verifications actually executed.
	Performed int64
	// MemoHits / MemoMisses partition memo-enabled lookups.
	MemoHits   int64
	MemoMisses int64
	// CertHits / CertMisses partition certificate-cache lookups.
	CertHits   int64
	CertMisses int64
	// Rejected counts failed verifications (garbage signatures).
	Rejected int64
	// Batches / BatchedSigs count VerifyBatch calls and the claims they
	// carried.
	Batches     int64
	BatchedSigs int64
}

// Engine implements crypto.Engine. Safe for concurrent use.
type Engine struct {
	auth   *crypto.Authority
	tracer *obsv.Tracer
	cache  int

	performed   atomic.Int64
	memoHits    atomic.Int64
	memoMisses  atomic.Int64
	certHits    atomic.Int64
	certMisses  atomic.Int64
	rejected    atomic.Int64
	batches     atomic.Int64
	batchedSigs atomic.Int64

	// cacheMu guards both LRUs. One mutex, not two: a cert query touches
	// the memo via its component verifies anyway, and the critical
	// sections are map+list pokes dwarfed by the Ed25519 math outside.
	cacheMu sync.Mutex
	memo    *lruSet
	certs   *lruSet

	// poolMu serializes pool reconfiguration (Resize/Stop) against task
	// submission, mirroring the transport's stopMu pattern: submitters
	// hold the read side, so a channel is never closed mid-send.
	poolMu  sync.RWMutex
	tasks   chan func() // nil when Workers == 0 or stopped
	workers int
	wg      sync.WaitGroup
	stopped bool
}

// New builds an engine over auth's key material. Install it with
// auth.SetEngine(e); call Stop when done if Workers > 0.
func New(auth *crypto.Authority, opts Options) *Engine {
	e := &Engine{auth: auth, tracer: opts.Tracer, cache: opts.Cache}
	if e.cache > 0 {
		e.memo = newLRUSet(e.cache)
		e.certs = newLRUSet(e.cache)
	}
	e.startLocked(opts.Workers)
	return e
}

// startLocked boots k workers on a fresh task channel. Caller holds
// poolMu (or is the constructor).
func (e *Engine) startLocked(k int) {
	if k <= 0 {
		e.tasks = nil
		e.workers = 0
		return
	}
	tasks := make(chan func(), 4*k)
	e.tasks = tasks
	e.workers = k
	for i := 0; i < k; i++ {
		e.wg.Add(1)
		go func() {
			defer e.wg.Done()
			for fn := range tasks {
				fn()
			}
		}()
	}
}

// Resize replaces the pool with k workers (0 = synchronous). Pending
// tasks on the old channel are drained by the exiting workers, so no
// submitted work is lost. Safe concurrently with VerifyBatch.
func (e *Engine) Resize(k int) {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.stopped {
		return
	}
	if e.tasks != nil {
		close(e.tasks)
		e.wg.Wait()
	}
	e.startLocked(k)
}

// Stop shuts the pool down, draining pending tasks. Verification keeps
// working afterwards — it just runs inline. Safe to call more than once.
func (e *Engine) Stop() {
	e.poolMu.Lock()
	defer e.poolMu.Unlock()
	if e.stopped {
		return
	}
	e.stopped = true
	if e.tasks != nil {
		close(e.tasks)
		e.wg.Wait()
		e.tasks = nil
		e.workers = 0
	}
}

// Workers returns the current pool size.
func (e *Engine) Workers() int {
	e.poolMu.RLock()
	defer e.poolMu.RUnlock()
	return e.workers
}

// Stats snapshots the engine counters.
func (e *Engine) Stats() Stats {
	return Stats{
		Performed:   e.performed.Load(),
		MemoHits:    e.memoHits.Load(),
		MemoMisses:  e.memoMisses.Load(),
		CertHits:    e.certHits.Load(),
		CertMisses:  e.certMisses.Load(),
		Rejected:    e.rejected.Load(),
		Batches:     e.batches.Load(),
		BatchedSigs: e.batchedSigs.Load(),
	}
}

// sigKey fingerprints one (signer, digest, signature) triple. The
// signature bytes are part of the key, so a forged signature over a
// previously-verified digest can never alias a genuine entry: it hashes
// to a different key, misses, and is verified (and rejected) for real.
// The fixed buffer keeps the hot path allocation-free; VerifySig refuses
// to memoize wrong-length signatures, so truncation can never alias.
func sigKey(signer types.NodeID, d types.Digest, sig []byte) [32]byte {
	var buf [8 + 32 + ed25519.SignatureSize]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(signer))
	copy(buf[8:40], d[:])
	copy(buf[40:], sig)
	return sha256.Sum256(buf[:])
}

// certKey fingerprints a (digest, signer set) pair. Signers are sorted
// into a copy first: the cached fact is about the *set*, and two
// orderings of the same quorum must collide.
func certKey(d types.Digest, signers []types.NodeID) [32]byte {
	sorted := make([]types.NodeID, len(signers))
	copy(sorted, signers)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	h := sha256.New()
	h.Write(d[:])
	var idb [8]byte
	for _, id := range sorted {
		binary.BigEndian.PutUint64(idb[:], uint64(id))
		h.Write(idb[:])
	}
	var out [32]byte
	h.Sum(out[:0])
	return out
}

// VerifySig implements crypto.Engine: one raw verification through the
// positive-only memo. Only successes are remembered — a cached answer is
// therefore always the same boolean the real verify would produce.
func (e *Engine) VerifySig(pub ed25519.PublicKey, signer types.NodeID, d types.Digest, sig []byte) bool {
	// A wrong-length signature always fails ed25519.Verify and must never
	// reach the memo: sigKey's fixed buffer would alias it with a
	// same-prefix genuine signature.
	if e.memo == nil || len(sig) != ed25519.SignatureSize {
		return e.rawVerify(pub, d, sig)
	}
	k := sigKey(signer, d, sig)
	e.cacheMu.Lock()
	hit := e.memo.has(k)
	e.cacheMu.Unlock()
	if hit {
		e.memoHits.Add(1)
		e.tracer.VerifyPoolEvent(obsv.VerifyMemoHit)
		return true
	}
	e.memoMisses.Add(1)
	e.tracer.VerifyPoolEvent(obsv.VerifyMemoMiss)
	ok := e.rawVerify(pub, d, sig)
	if ok {
		e.cacheMu.Lock()
		e.memo.add(k)
		e.cacheMu.Unlock()
	}
	return ok
}

func (e *Engine) rawVerify(pub ed25519.PublicKey, d types.Digest, sig []byte) bool {
	e.performed.Add(1)
	e.tracer.VerifyPoolEvent(obsv.VerifyPerformed)
	ok := ed25519.Verify(pub, d[:], sig)
	if !ok {
		e.rejected.Add(1)
		e.tracer.VerifyPoolEvent(obsv.VerifyRejected)
	}
	return ok
}

// CertCached implements crypto.Engine.
func (e *Engine) CertCached(d types.Digest, signers []types.NodeID) bool {
	if e.certs == nil {
		return false
	}
	k := certKey(d, signers)
	e.cacheMu.Lock()
	hit := e.certs.has(k)
	e.cacheMu.Unlock()
	if hit {
		e.certHits.Add(1)
		e.tracer.VerifyPoolEvent(obsv.VerifyCertHit)
	} else {
		e.certMisses.Add(1)
		e.tracer.VerifyPoolEvent(obsv.VerifyCertMiss)
	}
	return hit
}

// CertStore implements crypto.Engine.
func (e *Engine) CertStore(d types.Digest, signers []types.NodeID) {
	if e.certs == nil {
		return
	}
	k := certKey(d, signers)
	e.cacheMu.Lock()
	e.certs.add(k)
	e.cacheMu.Unlock()
}

// VerifyBatch checks a batch of independent signature claims, spreading
// chunks across the worker pool when one is running (inline otherwise —
// including when the pool's queue is full or the engine is stopped, so a
// batch always completes and never blocks behind reconfiguration).
// Successes warm the memo; the return values count the split. The
// protocol's own inline verification remains the rejection authority —
// this is strictly a prefetch.
func (e *Engine) VerifyBatch(claims []crypto.SigClaim) (ok, bad int) {
	if len(claims) == 0 {
		return 0, 0
	}
	e.batches.Add(1)
	e.batchedSigs.Add(int64(len(claims)))
	e.tracer.ObserveVerifyBatch(len(claims))

	verifyChunk := func(chunk []crypto.SigClaim, good *int64) {
		for _, c := range chunk {
			if e.VerifySig(e.auth.PublicKey(c.Signer), c.Signer, c.Digest, c.Sig) {
				atomic.AddInt64(good, 1)
			}
		}
	}

	var good int64
	e.poolMu.RLock()
	tasks := e.tasks
	e.poolMu.RUnlock()
	if tasks == nil || len(claims) <= batchChunk {
		verifyChunk(claims, &good)
		return int(good), len(claims) - int(good)
	}

	var wg sync.WaitGroup
	for start := 0; start < len(claims); start += batchChunk {
		end := start + batchChunk
		if end > len(claims) {
			end = len(claims)
		}
		chunk := claims[start:end]
		wg.Add(1)
		job := func() {
			defer wg.Done()
			verifyChunk(chunk, &good)
		}
		// Submission races Resize/Stop closing the channel; the read lock
		// makes the send safe, and a full queue degrades to inline.
		e.poolMu.RLock()
		if e.tasks == nil {
			e.poolMu.RUnlock()
			job()
			continue
		}
		select {
		case e.tasks <- job:
		default:
			job()
		}
		e.poolMu.RUnlock()
	}
	wg.Wait()
	return int(good), len(claims) - int(good)
}

// lruSet is a bounded set of 32-byte keys with least-recently-used
// eviction (map + intrusive list; has() refreshes recency).
type lruSet struct {
	cap   int
	order *list.List // front = most recent; values are [32]byte keys
	items map[[32]byte]*list.Element
}

func newLRUSet(cap int) *lruSet {
	return &lruSet{cap: cap, order: list.New(), items: make(map[[32]byte]*list.Element, cap)}
}

func (s *lruSet) has(k [32]byte) bool {
	el, ok := s.items[k]
	if ok {
		s.order.MoveToFront(el)
	}
	return ok
}

func (s *lruSet) add(k [32]byte) {
	if el, ok := s.items[k]; ok {
		s.order.MoveToFront(el)
		return
	}
	s.items[k] = s.order.PushFront(k)
	for s.order.Len() > s.cap {
		oldest := s.order.Back()
		s.order.Remove(oldest)
		delete(s.items, oldest.Value.([32]byte))
	}
}

// Len returns the current entry count (tests).
func (s *lruSet) Len() int { return s.order.Len() }

// MemoLen / CertLen expose cache sizes for tests and ops surfaces.
func (e *Engine) MemoLen() int {
	if e.memo == nil {
		return 0
	}
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	return e.memo.Len()
}

func (e *Engine) CertLen() int {
	if e.certs == nil {
		return 0
	}
	e.cacheMu.Lock()
	defer e.cacheMu.Unlock()
	return e.certs.Len()
}

// Claims extracts the signature claims a message exposes, nil when it
// exposes none or carries an empty signature (MAC-authenticated variants
// leave Sig nil). Shared by every inbound-prepare hook.
func Claims(from types.NodeID, m types.Message) []crypto.SigClaim {
	sc, ok := m.(crypto.SigClaimer)
	if !ok {
		return nil
	}
	all := sc.SigClaims(from)
	out := all[:0]
	for _, c := range all {
		if len(c.Sig) > 0 {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Prepare returns a transport inbound-prepare hook: it batch-verifies
// every signature claim the message exposes, warming the memo so the
// event-loop verification is a lookup. Garbage signatures fail here
// (counted in Stats.Rejected) and again inline — rejection authority
// stays with the protocol.
func (e *Engine) Prepare() func(from types.NodeID, m types.Message) {
	return func(from types.NodeID, m types.Message) {
		if claims := Claims(from, m); claims != nil {
			e.VerifyBatch(claims)
		}
	}
}
