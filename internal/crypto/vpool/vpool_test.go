package vpool

import (
	"crypto/ed25519"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"bftkit/internal/crypto"
	"bftkit/internal/obsv"
	"bftkit/internal/types"
)

func digestN(i int) types.Digest {
	return types.DigestBytes([]byte(fmt.Sprintf("payload-%d", i)))
}

// TestMemoPositiveOnly pins the memo contract: a genuine signature is
// verified once and recalled afterwards, while a failed verification is
// never cached — re-querying garbage re-verifies (and re-rejects) it.
func TestMemoPositiveOnly(t *testing.T) {
	auth := crypto.NewAuthority(1)
	e := New(auth, Options{Cache: 64})
	d := types.DigestBytes([]byte("m"))
	sig := auth.Signer(3).Sign(d)
	pub := auth.PublicKey(3)

	if !e.VerifySig(pub, 3, d, sig) {
		t.Fatal("genuine signature rejected")
	}
	if !e.VerifySig(pub, 3, d, sig) {
		t.Fatal("genuine signature rejected on recall")
	}
	s := e.Stats()
	if s.Performed != 1 || s.MemoHits != 1 || s.MemoMisses != 1 {
		t.Fatalf("stats = %+v, want 1 performed / 1 hit / 1 miss", s)
	}

	// Garbage over the same digest: distinct key, so it can never alias
	// the genuine entry — it is verified for real and rejected, twice.
	bad := make([]byte, ed25519.SignatureSize)
	copy(bad, sig)
	bad[0] ^= 0xff
	for i := 0; i < 2; i++ {
		if e.VerifySig(pub, 3, d, bad) {
			t.Fatal("forged signature accepted")
		}
	}
	s = e.Stats()
	if s.Rejected != 2 || s.Performed != 3 {
		t.Fatalf("stats = %+v, want 2 rejected / 3 performed (failures never cached)", s)
	}
}

// TestMemoKeyedBySignature pins that the signature bytes are part of the
// memo key: after a genuine (signer, digest) pair is cached, a *different*
// signature over the same digest by the same signer must still fail.
func TestMemoKeyedBySignature(t *testing.T) {
	auth := crypto.NewAuthority(2)
	e := New(auth, Options{Cache: 64})
	d := types.DigestBytes([]byte("replay"))
	sig := auth.Signer(0).Sign(d)
	pub := auth.PublicKey(0)
	if !e.VerifySig(pub, 0, d, sig) {
		t.Fatal("genuine signature rejected")
	}
	forged := auth.Signer(1).Sign(d) // valid bytes, wrong identity
	if e.VerifySig(pub, 0, d, forged) {
		t.Fatal("another node's signature accepted via memo")
	}
}

// TestWrongLengthSigBypassesMemo pins the aliasing guard: sigKey uses a
// fixed-size buffer, so a signature longer than ed25519.SignatureSize that
// shares a 64-byte prefix with a cached genuine signature would hash to
// the same key. Such signatures must bypass the memo entirely (they always
// fail ed25519.Verify) rather than be answered from it.
func TestWrongLengthSigBypassesMemo(t *testing.T) {
	auth := crypto.NewAuthority(3)
	e := New(auth, Options{Cache: 64})
	d := types.DigestBytes([]byte("alias"))
	sig := auth.Signer(5).Sign(d)
	pub := auth.PublicKey(5)
	if !e.VerifySig(pub, 5, d, sig) {
		t.Fatal("genuine signature rejected")
	}
	long := append(append([]byte{}, sig...), 0xde, 0xad) // same 64-byte prefix
	if e.VerifySig(pub, 5, d, long) {
		t.Fatal("over-long signature accepted via memo aliasing")
	}
	short := sig[:ed25519.SignatureSize-1]
	if e.VerifySig(pub, 5, d, short) {
		t.Fatal("truncated signature accepted")
	}
	if e.VerifySig(pub, 5, d, nil) {
		t.Fatal("nil signature accepted")
	}
}

// TestCertCacheRoundTrip pins the certificate LRU: a stored (digest,
// signer set) fact is recalled regardless of signer ordering, and a
// different set or digest misses.
func TestCertCacheRoundTrip(t *testing.T) {
	auth := crypto.NewAuthority(4)
	e := New(auth, Options{Cache: 64})
	d := types.DigestBytes([]byte("cert"))
	set := []types.NodeID{2, 0, 1}
	if e.CertCached(d, set) {
		t.Fatal("unexpected hit on empty cache")
	}
	e.CertStore(d, set)
	if !e.CertCached(d, set) {
		t.Fatal("stored certificate not recalled")
	}
	if !e.CertCached(d, []types.NodeID{0, 1, 2}) {
		t.Fatal("signer order must not affect the cache key")
	}
	if e.CertCached(d, []types.NodeID{0, 1, 3}) {
		t.Fatal("different signer set hit the cache")
	}
	d2 := types.DigestBytes([]byte("other"))
	if e.CertCached(d2, set) {
		t.Fatal("different digest hit the cache")
	}
}

// TestLRUEviction pins the bound: the caches never exceed their capacity
// and evict least-recently-used entries first.
func TestLRUEviction(t *testing.T) {
	s := newLRUSet(3)
	keys := make([][32]byte, 5)
	for i := range keys {
		keys[i][0] = byte(i)
		s.add(keys[i])
	}
	if s.Len() != 3 {
		t.Fatalf("len = %d, want capacity 3", s.Len())
	}
	if s.has(keys[0]) || s.has(keys[1]) {
		t.Fatal("oldest entries must be evicted")
	}
	if !s.has(keys[2]) || !s.has(keys[3]) || !s.has(keys[4]) {
		t.Fatal("recent entries must survive")
	}
	// has() refreshes recency: touch keys[2], add one more, and keys[3]
	// (now oldest) goes instead.
	s.has(keys[2])
	s.add(keys[0])
	if !s.has(keys[2]) {
		t.Fatal("recently-touched entry evicted")
	}
	if s.has(keys[3]) {
		t.Fatal("least-recently-used entry survived")
	}
}

// TestEngineLRUBounded drives the engine past its cache capacity and
// checks MemoLen/CertLen stay bounded while answers stay correct.
func TestEngineLRUBounded(t *testing.T) {
	auth := crypto.NewAuthority(5)
	e := New(auth, Options{Cache: 8})
	pub := auth.PublicKey(0)
	signer := auth.Signer(0)
	for i := 0; i < 20; i++ {
		d := digestN(i)
		if !e.VerifySig(pub, 0, d, signer.Sign(d)) {
			t.Fatalf("genuine signature %d rejected", i)
		}
		e.CertStore(d, []types.NodeID{0, 1, 2})
	}
	if e.MemoLen() != 8 || e.CertLen() != 8 {
		t.Fatalf("memo=%d certs=%d, want both bounded at 8", e.MemoLen(), e.CertLen())
	}
	// An evicted entry is simply re-verified — still correct.
	d0 := digestN(0)
	if !e.VerifySig(pub, 0, d0, signer.Sign(d0)) {
		t.Fatal("evicted entry must re-verify correctly")
	}
}

// TestChargedAccountingInvariance pins the determinism contract: the
// crypto.Stats the cost model reads are bit-identical with and without an
// engine installed, for the same protocol-level call sequence — including
// certificate verifies answered from the cache.
func TestChargedAccountingInvariance(t *testing.T) {
	run := func(install bool) (sign, verify, mac, macVerify int64) {
		auth := crypto.NewAuthority(9)
		if install {
			auth.SetEngine(New(auth, Options{Cache: 64}))
		}
		v := auth.Verifier()
		d := types.DigestBytes([]byte("acct"))
		sig := auth.Signer(1).Sign(d)
		for i := 0; i < 3; i++ { // repeat: memo hits must charge like work
			v.VerifySig(1, d, sig)
		}
		cert := &crypto.Certificate{Digest: d}
		for i := 0; i < 3; i++ {
			cert.Add(types.NodeID(i), auth.Signer(types.NodeID(i)).Sign(d))
		}
		for i := 0; i < 2; i++ { // second run is a cert-cache hit
			if err := cert.Verify(v, 3); err != nil {
				t.Fatalf("valid certificate rejected (engine=%v): %v", install, err)
			}
		}
		return auth.Stats.Snapshot()
	}
	s1, v1, m1, mv1 := run(false)
	s2, v2, m2, mv2 := run(true)
	if s1 != s2 || v1 != v2 || m1 != m2 || mv1 != mv2 {
		t.Fatalf("charged stats diverge: plain %d/%d/%d/%d vs engine %d/%d/%d/%d",
			s1, v1, m1, mv1, s2, v2, m2, mv2)
	}
}

// TestVerifyBatch pins the batch API: correct good/bad split, memo warmed
// so inline re-verification is recalled, claims counted.
func TestVerifyBatch(t *testing.T) {
	auth := crypto.NewAuthority(6)
	e := New(auth, Options{Workers: 4, Cache: 256})
	defer e.Stop()
	var claims []crypto.SigClaim
	for i := 0; i < 10; i++ {
		d := digestN(i)
		sig := auth.Signer(types.NodeID(i)).Sign(d)
		if i%3 == 0 { // corrupt every third claim
			sig[0] ^= 0xff
		}
		claims = append(claims, crypto.SigClaim{Signer: types.NodeID(i), Digest: d, Sig: sig})
	}
	ok, bad := e.VerifyBatch(claims)
	if ok != 6 || bad != 4 {
		t.Fatalf("batch split = %d ok / %d bad, want 6/4", ok, bad)
	}
	s := e.Stats()
	if s.Batches != 1 || s.BatchedSigs != 10 || s.Rejected != 4 {
		t.Fatalf("stats = %+v, want 1 batch / 10 sigs / 4 rejected", s)
	}
	// The good claims are now warm: re-verifying performs no new work.
	performedBefore := s.Performed
	claim := claims[1]
	if !e.VerifySig(auth.PublicKey(claim.Signer), claim.Signer, claim.Digest, claim.Sig) {
		t.Fatal("warmed claim rejected")
	}
	if got := e.Stats().Performed; got != performedBefore {
		t.Fatalf("performed grew %d -> %d; warmed claim should be a memo hit", performedBefore, got)
	}
}

// TestVerifyBatchInlineWhenStopped pins graceful degradation: a stopped
// (or never-started) pool still verifies batches, inline.
func TestVerifyBatchInlineWhenStopped(t *testing.T) {
	auth := crypto.NewAuthority(7)
	for _, mode := range []string{"workers0", "stopped"} {
		e := New(auth, Options{Workers: 2, Cache: 0})
		if mode == "workers0" {
			e = New(auth, Options{Workers: 0, Cache: 0})
		} else {
			e.Stop()
		}
		var claims []crypto.SigClaim
		for i := 0; i < 9; i++ {
			d := digestN(i)
			claims = append(claims, crypto.SigClaim{
				Signer: types.NodeID(i), Digest: d, Sig: auth.Signer(types.NodeID(i)).Sign(d),
			})
		}
		if ok, bad := e.VerifyBatch(claims); ok != 9 || bad != 0 {
			t.Fatalf("%s: batch split = %d/%d, want 9/0", mode, ok, bad)
		}
		if e.Workers() != 0 {
			t.Fatalf("%s: workers = %d, want 0", mode, e.Workers())
		}
	}
}

// TestTracerCounters pins the obsv plumbing: engine events land in the
// tracer's VerifyPoolStats and the batch-size histogram.
func TestTracerCounters(t *testing.T) {
	auth := crypto.NewAuthority(8)
	tr := obsv.New(obsv.Options{})
	e := New(auth, Options{Cache: 64, Tracer: tr})
	d := types.DigestBytes([]byte("tr"))
	sig := auth.Signer(0).Sign(d)
	pub := auth.PublicKey(0)
	e.VerifySig(pub, 0, d, sig)
	e.VerifySig(pub, 0, d, sig)
	e.VerifySig(pub, 0, d, []byte("garbage"))
	e.CertCached(d, []types.NodeID{0})
	e.CertStore(d, []types.NodeID{0})
	e.CertCached(d, []types.NodeID{0})
	e.VerifyBatch([]crypto.SigClaim{{Signer: 0, Digest: d, Sig: sig}})
	vs := tr.VerifyPoolStats()
	// The garbage signature is wrong-length, so it bypasses the memo
	// (no miss counted) and goes straight to a raw verify + reject.
	want := obsv.VerifyPoolStats{Performed: 2, MemoHits: 2, MemoMisses: 1, CertHits: 1, CertMisses: 1, Rejected: 1}
	if vs != want {
		t.Fatalf("tracer stats = %+v, want %+v", vs, want)
	}
	if tr.VerifyBatchSize.Count() != 1 {
		t.Fatalf("batch-size histogram count = %d, want 1", tr.VerifyBatchSize.Count())
	}
}

// TestConcurrentBatchResizeStop is the race/stress test: many goroutines
// submit batches while the pool is resized up, down, to zero, and finally
// stopped. Run under -race this pins the poolMu discipline — no send on a
// closed channel, no lost verifications, no deadlock.
func TestConcurrentBatchResizeStop(t *testing.T) {
	auth := crypto.NewAuthority(11)
	e := New(auth, Options{Workers: 4, Cache: 1024})
	var claims []crypto.SigClaim
	for i := 0; i < 16; i++ {
		d := digestN(i)
		claims = append(claims, crypto.SigClaim{
			Signer: types.NodeID(i), Digest: d, Sig: auth.Signer(types.NodeID(i)).Sign(d),
		})
	}
	const submitters = 8
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ok, bad := e.VerifyBatch(claims); ok != 16 || bad != 0 {
					t.Errorf("batch split = %d/%d, want 16/0", ok, bad)
					return
				}
			}
		}()
	}
	for _, k := range []int{1, 8, 0, 2, 4} {
		e.Resize(k)
	}
	e.Stop()
	e.Resize(3) // no-op after Stop
	if e.Workers() != 0 {
		t.Fatalf("workers = %d after Stop, want 0", e.Workers())
	}
	close(stop)
	wg.Wait()
	e.Stop() // idempotent
}

// TestStopDrainsGoroutines mirrors the transport's leak check: worker
// goroutines exist while the pool runs and are gone after Stop.
func TestStopDrainsGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	auth := crypto.NewAuthority(12)
	e := New(auth, Options{Workers: 6, Cache: 64})
	if runtime.NumGoroutine() < before+6 {
		t.Fatalf("expected 6 worker goroutines, have %d over baseline",
			runtime.NumGoroutine()-before)
	}
	var claims []crypto.SigClaim
	for i := 0; i < 12; i++ {
		d := digestN(i)
		claims = append(claims, crypto.SigClaim{
			Signer: types.NodeID(i), Digest: d, Sig: auth.Signer(types.NodeID(i)).Sign(d),
		})
	}
	e.VerifyBatch(claims)
	e.Stop()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines did not drain: %d > %d", runtime.NumGoroutine(), before)
		}
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
}

// TestClaims pins the claim-extraction helper: non-claimers and empty
// signatures (MAC-mode messages) yield nil.
func TestClaims(t *testing.T) {
	d := types.DigestBytes([]byte("c"))
	if Claims(0, plainMsg{}) != nil {
		t.Fatal("non-claimer must yield nil")
	}
	if Claims(0, claimMsg{claims: []crypto.SigClaim{{Signer: 1, Digest: d}}}) != nil {
		t.Fatal("empty-signature claims must be filtered out")
	}
	got := Claims(0, claimMsg{claims: []crypto.SigClaim{
		{Signer: 1, Digest: d},
		{Signer: 2, Digest: d, Sig: []byte{1, 2, 3}},
	}})
	if len(got) != 1 || got[0].Signer != 2 {
		t.Fatalf("claims = %+v, want the one signed claim", got)
	}
}

type plainMsg struct{}

func (plainMsg) Kind() string { return "PLAIN" }

type claimMsg struct{ claims []crypto.SigClaim }

func (claimMsg) Kind() string                               { return "CLAIMED" }
func (m claimMsg) SigClaims(types.NodeID) []crypto.SigClaim { return m.claims }
