package vpool

import (
	"runtime"
	"testing"

	"bftkit/internal/crypto"
	"bftkit/internal/types"
)

// benchClaims builds one batch of genuine, distinct signature claims —
// the shape of a PBFT commit wave arriving at one replica.
func benchClaims(auth *crypto.Authority, n int) []crypto.SigClaim {
	claims := make([]crypto.SigClaim, n)
	for i := range claims {
		d := digestN(i)
		claims[i] = crypto.SigClaim{
			Signer: types.NodeID(i),
			Digest: d,
			Sig:    auth.Signer(types.NodeID(i)).Sign(d),
		}
	}
	return claims
}

const benchBatch = 64

// BenchmarkVerifySerial is the baseline: every signature verified inline
// on one goroutine, no caches (Workers=0, Cache=0 — the simulator mode).
func BenchmarkVerifySerial(b *testing.B) {
	auth := crypto.NewAuthority(1)
	e := New(auth, Options{Workers: 0, Cache: 0})
	claims := benchClaims(auth, benchBatch)
	b.SetBytes(benchBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := e.VerifyBatch(claims); ok != benchBatch {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkVerifyPooled spreads the same batch across the worker pool,
// still with caches off so every iteration performs the full Ed25519
// work — this isolates the parallelism win.
func BenchmarkVerifyPooled(b *testing.B) {
	auth := crypto.NewAuthority(1)
	e := New(auth, Options{Workers: runtime.GOMAXPROCS(0), Cache: 0})
	defer e.Stop()
	claims := benchClaims(auth, benchBatch)
	b.SetBytes(benchBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := e.VerifyBatch(claims); ok != benchBatch {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkVerifyCached re-verifies an already-warm batch: the steady
// state of broadcast traffic, where every receiver after the first is a
// memo hit. This isolates the memoization win.
func BenchmarkVerifyCached(b *testing.B) {
	auth := crypto.NewAuthority(1)
	e := New(auth, Options{Workers: 0, Cache: 2 * benchBatch})
	claims := benchClaims(auth, benchBatch)
	e.VerifyBatch(claims) // warm the memo
	b.SetBytes(benchBatch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ok, _ := e.VerifyBatch(claims); ok != benchBatch {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkCertVerifyCached measures a quorum-certificate check answered
// by the certificate LRU versus component-wise verification.
func BenchmarkCertVerifyCached(b *testing.B) {
	auth := crypto.NewAuthority(1)
	auth.SetEngine(New(auth, Options{Workers: 0, Cache: 64}))
	v := auth.Verifier()
	d := types.DigestBytes([]byte("bench-cert"))
	cert := &crypto.Certificate{Digest: d}
	for i := 0; i < 5; i++ {
		cert.Add(types.NodeID(i), auth.Signer(types.NodeID(i)).Sign(d))
	}
	if err := cert.Verify(v, 5); err != nil { // warm the cert cache
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cert.Verify(v, 5); err != nil {
			b.Fatal(err)
		}
	}
}
