// Package crypto provides the authentication substrate the surveyed BFT
// protocols choose between (design dimension E3 and design choice 11 of
// the paper): Ed25519 signatures, HMAC-SHA256 authenticator vectors
// (MACs), and quorum certificates that can be accounted either as
// multi-signatures or as constant-size threshold signatures.
//
// Real threshold signatures (BLS/RSA [57,168] in the paper) need pairing
// or RSA-share arithmetic outside the standard library. We substitute an
// Ed25519 multi-signature with a signer bitmap and verify every component
// signature; when a deployment enables SchemeThreshold the *size model*
// (EncodedSize) charges a single constant-size signature, which is the
// property the linear protocols rely on. DESIGN.md documents this
// substitution.
//
// All keys are derived deterministically from a seed so simulations are
// reproducible; this is a research harness, not a production KMS.
package crypto

import (
	"crypto/ed25519"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"bftkit/internal/types"
)

// Scheme selects how messages are authenticated (dimension E3).
type Scheme int

const (
	// SchemeMAC authenticates with pairwise HMAC vectors, as in the
	// MAC-based PBFT variant [61]. Cheap, but no non-repudiation.
	SchemeMAC Scheme = iota
	// SchemeSig authenticates with Ed25519 signatures [59].
	SchemeSig
	// SchemeThreshold uses signatures and additionally accounts quorum
	// certificates as constant-size threshold signatures (DC 11).
	SchemeThreshold
)

// String returns the scheme name used in tables and traces.
func (s Scheme) String() string {
	switch s {
	case SchemeMAC:
		return "MAC"
	case SchemeSig:
		return "signature"
	case SchemeThreshold:
		return "threshold"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// SigSize is the wire size charged per Ed25519 signature.
const SigSize = ed25519.SignatureSize

// MACSize is the wire size charged per HMAC-SHA256 tag.
const MACSize = sha256.Size

// Stats counts cryptographic operations. Protocol comparisons in
// experiment X10 read these; counters are atomic because the TCP driver
// verifies concurrently.
type Stats struct {
	SignOps      atomic.Int64
	VerifyOps    atomic.Int64
	MACOps       atomic.Int64
	MACVerifyOps atomic.Int64
}

// Snapshot returns a plain-value copy of the counters.
func (s *Stats) Snapshot() (sign, verify, mac, macVerify int64) {
	return s.SignOps.Load(), s.VerifyOps.Load(), s.MACOps.Load(), s.MACVerifyOps.Load()
}

// Op labels one cryptographic operation for per-node observation.
type Op int

// Operation kinds reported to the authority's observer.
const (
	OpSign Op = iota
	OpVerify
	OpMAC
	OpMACVerify
)

// Observer receives every crypto operation with the identity of the node
// that performed it. node is -1 when the operation went through a handle
// without identity (the legacy shared Verifier).
type Observer func(node types.NodeID, op Op)

// Engine is a pluggable signature-verification backend (implemented by
// internal/crypto/vpool). The split keeps the *cost model* here and the
// *mechanism* there: Verifier and Certificate charge Stats and the
// observer for every protocol-required check exactly as the inline code
// does, then delegate the raw Ed25519 work to the engine, which may
// memoize or parallelize it. An engine therefore changes host CPU time
// only — never the accounted operation counts the deterministic perf
// snapshots pin.
type Engine interface {
	// VerifySig performs (or recalls from a positive-only memo) one raw
	// Ed25519 verification of sig by signer over d.
	VerifySig(pub ed25519.PublicKey, signer types.NodeID, d types.Digest, sig []byte) bool
	// CertCached reports whether the certificate fact "this exact signer
	// set validly signed d" was established by a previous full verify.
	CertCached(d types.Digest, signers []types.NodeID) bool
	// CertStore records that fact after a successful full verify.
	CertStore(d types.Digest, signers []types.NodeID)
}

// SigClaim is one verifiable assertion a message carries: "Signer signed
// Digest, here is the signature". The transport's async inbound-verify
// stage batch-checks claims off the event loop to warm the engine memo;
// the protocol's own inline verify remains the sole rejection authority.
type SigClaim struct {
	Signer types.NodeID
	Digest types.Digest
	Sig    []byte
}

// SigClaimer is implemented by messages that can expose their signature
// claims for pre-verification. from is the transport-level sender, which
// claims whose signer the message does not name (e.g. a PBFT pre-prepare
// is implicitly signed by the view's leader — the sender, when honest).
type SigClaimer interface {
	SigClaims(from types.NodeID) []SigClaim
}

// Authority owns the key material of one deployment: an Ed25519 keypair
// per participant and a pairwise MAC key per (ordered) participant pair.
// Keys are derived lazily and deterministically from the authority seed.
type Authority struct {
	seed int64

	mu      sync.Mutex
	privs   map[types.NodeID]ed25519.PrivateKey
	pubs    map[types.NodeID]ed25519.PublicKey
	macKeys map[[2]types.NodeID][]byte

	observer atomic.Value // Observer
	engine   atomic.Value // Engine

	Stats Stats
}

// SetEngine installs a verification engine (nil to remove). The engine
// only replaces the raw Ed25519 work; all Stats/observer accounting stays
// in this package and is unchanged by the swap.
func (a *Authority) SetEngine(e Engine) { a.engine.Store(engineBox{e}) }

// engineBox wraps the interface so storing a nil Engine (to uninstall)
// does not panic atomic.Value's consistent-type check.
type engineBox struct{ e Engine }

func (a *Authority) getEngine() Engine {
	if b, ok := a.engine.Load().(engineBox); ok {
		return b.e
	}
	return nil
}

// SetObserver installs a per-operation callback (nil to remove). The
// callback runs inline on the operating goroutine and must be cheap and
// concurrency-safe under the TCP driver.
func (a *Authority) SetObserver(o Observer) { a.observer.Store(o) }

func (a *Authority) observe(node types.NodeID, op Op) {
	if o, _ := a.observer.Load().(Observer); o != nil {
		o(node, op)
	}
}

// NewAuthority creates a deterministic key authority.
func NewAuthority(seed int64) *Authority {
	return &Authority{
		seed:    seed,
		privs:   make(map[types.NodeID]ed25519.PrivateKey),
		pubs:    make(map[types.NodeID]ed25519.PublicKey),
		macKeys: make(map[[2]types.NodeID][]byte),
	}
}

func (a *Authority) keyFor(id types.NodeID) (ed25519.PrivateKey, ed25519.PublicKey) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if priv, ok := a.privs[id]; ok {
		return priv, a.pubs[id]
	}
	var buf [16]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(a.seed))
	binary.BigEndian.PutUint64(buf[8:], uint64(id))
	seed := sha256.Sum256(buf[:])
	priv := ed25519.NewKeyFromSeed(seed[:])
	pub := priv.Public().(ed25519.PublicKey)
	a.privs[id] = priv
	a.pubs[id] = pub
	return priv, pub
}

func (a *Authority) macKey(x, y types.NodeID) []byte {
	if x > y {
		x, y = y, x
	}
	pair := [2]types.NodeID{x, y}
	a.mu.Lock()
	defer a.mu.Unlock()
	if k, ok := a.macKeys[pair]; ok {
		return k
	}
	var buf [24]byte
	binary.BigEndian.PutUint64(buf[:8], uint64(a.seed)^0xabcdef)
	binary.BigEndian.PutUint64(buf[8:16], uint64(x))
	binary.BigEndian.PutUint64(buf[16:], uint64(y))
	k := sha256.Sum256(buf[:])
	key := k[:]
	a.macKeys[pair] = key
	return key
}

// PublicKey returns one participant's public key (deriving the pair on
// first use). Engines use it to verify claims without private access.
func (a *Authority) PublicKey(id types.NodeID) ed25519.PublicKey {
	_, pub := a.keyFor(id)
	return pub
}

// KeyRing is the public half of an Authority: participant identities
// mapped to raw Ed25519 public keys. It is what an offline auditor —
// a party with no private key material and no Authority — needs to
// re-verify a forensic proof, and it serializes to JSON so evidence
// bundles can carry the keys they were checked against.
type KeyRing map[types.NodeID][]byte

// KeyRing exports the public keys of participants 0..n-1.
func (a *Authority) KeyRing(n int) KeyRing {
	kr := make(KeyRing, n)
	for i := 0; i < n; i++ {
		id := types.NodeID(i)
		kr[id] = append([]byte(nil), a.PublicKey(id)...)
	}
	return kr
}

// VerifySig checks sig over d against id's public key. Unlike
// Verifier.VerifySig it performs no cost-model accounting and needs no
// Authority, making it safe for auditors that must not perturb the
// deterministic operation counts of the run they observe.
func (k KeyRing) VerifySig(id types.NodeID, d types.Digest, sig []byte) bool {
	pub, ok := k[id]
	if !ok || len(pub) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(ed25519.PublicKey(pub), d[:], sig)
}

// Signer returns the signing handle for one participant.
func (a *Authority) Signer(id types.NodeID) *Signer { return &Signer{auth: a, id: id} }

// Verifier returns a verification handle without caller identity;
// observed operations are attributed to node -1. Prefer VerifierFor.
func (a *Authority) Verifier() *Verifier { return &Verifier{auth: a, id: -1} }

// VerifierFor returns the verification handle for one participant, so
// verify operations are attributed to the node performing them.
func (a *Authority) VerifierFor(id types.NodeID) *Verifier { return &Verifier{auth: a, id: id} }

// Signer signs digests and computes MACs on behalf of one participant.
type Signer struct {
	auth *Authority
	id   types.NodeID
}

// ID returns the owning participant.
func (s *Signer) ID() types.NodeID { return s.id }

// Sign produces an Ed25519 signature over the digest.
func (s *Signer) Sign(d types.Digest) []byte {
	priv, _ := s.auth.keyFor(s.id)
	s.auth.Stats.SignOps.Add(1)
	s.auth.observe(s.id, OpSign)
	return ed25519.Sign(priv, d[:])
}

// MAC produces an HMAC tag on the digest for one receiver.
func (s *Signer) MAC(to types.NodeID, d types.Digest) []byte {
	key := s.auth.macKey(s.id, to)
	s.auth.Stats.MACOps.Add(1)
	s.auth.observe(s.id, OpMAC)
	m := hmac.New(sha256.New, key)
	m.Write(d[:])
	return m.Sum(nil)
}

// AuthVector produces the authenticator vector used by MAC-based PBFT:
// one MAC per receiver, indexed by position in peers.
func (s *Signer) AuthVector(d types.Digest, peers []types.NodeID) [][]byte {
	out := make([][]byte, len(peers))
	for i, p := range peers {
		if p == s.id {
			continue // no self-MAC needed
		}
		out[i] = s.MAC(p, d)
	}
	return out
}

// Verifier checks signatures and MACs against the authority's keys. The
// id is the node doing the verifying (for op attribution), not the
// claimed signer.
type Verifier struct {
	auth *Authority
	id   types.NodeID
}

// VerifySig reports whether sig is a valid signature by id over d. The
// check is always charged to Stats and the observer; the raw Ed25519
// work goes through the installed engine when one is present.
func (v *Verifier) VerifySig(id types.NodeID, d types.Digest, sig []byte) bool {
	_, pub := v.auth.keyFor(id)
	v.auth.Stats.VerifyOps.Add(1)
	v.auth.observe(v.id, OpVerify)
	if e := v.auth.getEngine(); e != nil {
		return e.VerifySig(pub, id, d, sig)
	}
	return ed25519.Verify(pub, d[:], sig)
}

// AccountVerifies charges n signature verifications to Stats and the
// observer without performing them — the bill for a certificate the
// engine recalled from cache. The protocol required those checks; the
// engine merely already knows their answer, and the cost model must not
// see the difference.
func (v *Verifier) AccountVerifies(n int) {
	v.auth.Stats.VerifyOps.Add(int64(n))
	for i := 0; i < n; i++ {
		v.auth.observe(v.id, OpVerify)
	}
}

// VerifyMAC reports whether mac is a valid tag from `from` to `to` on d.
func (v *Verifier) VerifyMAC(from, to types.NodeID, d types.Digest, mac []byte) bool {
	key := v.auth.macKey(from, to)
	v.auth.Stats.MACVerifyOps.Add(1)
	v.auth.observe(v.id, OpMACVerify)
	m := hmac.New(sha256.New, key)
	m.Write(d[:])
	return hmac.Equal(m.Sum(nil), mac)
}

// Certificate is a quorum certificate: a set of signatures from distinct
// replicas over the same digest. Linear protocols (HotStuff, SBFT, Kauri)
// attach certificates instead of re-running all-to-all phases (DC 1).
type Certificate struct {
	Digest  types.Digest
	Signers []types.NodeID
	Sigs    [][]byte
	// Threshold marks the certificate as produced under SchemeThreshold;
	// EncodedSize then charges one constant-size signature.
	Threshold bool
}

// Errors returned by Certificate.Verify.
var (
	ErrCertTooSmall  = errors.New("crypto: certificate below quorum size")
	ErrCertDuplicate = errors.New("crypto: duplicate signer in certificate")
	ErrCertBadSig    = errors.New("crypto: invalid signature in certificate")
	ErrCertShape     = errors.New("crypto: signer/signature length mismatch")
)

// Add appends one component signature.
func (c *Certificate) Add(id types.NodeID, sig []byte) {
	c.Signers = append(c.Signers, id)
	c.Sigs = append(c.Sigs, sig)
}

// Size returns the number of component signatures.
func (c *Certificate) Size() int { return len(c.Signers) }

// Verify checks the certificate contains at least quorum valid signatures
// from distinct replicas over c.Digest.
//
// Shape, quorum, and duplicate checks always run — they are cheap and
// depend on this query's bytes, not on signature validity. The signature
// loop may be answered by the engine's certificate cache: the cached fact
// is "this exact signer set validly signed this digest", established only
// by a previous fully-successful run of the same loop, so a hit yields
// the same nil result — charged at the same len(Signers) verifications
// the full run would have billed. Failures are never cached.
func (c *Certificate) Verify(v *Verifier, quorum int) error {
	if len(c.Signers) != len(c.Sigs) {
		return ErrCertShape
	}
	if len(c.Signers) < quorum {
		return fmt.Errorf("%w: have %d, need %d", ErrCertTooSmall, len(c.Signers), quorum)
	}
	seen := make(map[types.NodeID]bool, len(c.Signers))
	for _, id := range c.Signers {
		if seen[id] {
			return fmt.Errorf("%w: %v", ErrCertDuplicate, id)
		}
		seen[id] = true
	}
	e := v.auth.getEngine()
	if e != nil && e.CertCached(c.Digest, c.Signers) {
		v.AccountVerifies(len(c.Signers))
		return nil
	}
	for i, id := range c.Signers {
		if !v.VerifySig(id, c.Digest, c.Sigs[i]) {
			return fmt.Errorf("%w: from %v", ErrCertBadSig, id)
		}
	}
	if e != nil {
		e.CertStore(c.Digest, c.Signers)
	}
	return nil
}

// EncodedSize returns the wire size the certificate is charged in message
// size accounting: constant under the threshold model, linear otherwise.
func (c *Certificate) EncodedSize() int {
	if c.Threshold {
		return SigSize + 8 // one aggregate signature + bitmap word
	}
	return len(c.Sigs)*(SigSize+8) + 8
}
